"""Benchmark reporting: paper-vs-measured tables plus a machine-readable
wall-clock record (``BENCH_perf.json``).

Two layers:

* :func:`emit` — the original human-readable aligned table, unchanged.
* :func:`record_timing` / :func:`time_op` / :func:`record_counter` — collect
  ``time.perf_counter`` wall-clock timings and solver op counters into a
  process-global registry.  ``benchmarks/conftest.py`` flushes the registry
  to ``BENCH_perf.json`` at the end of the pytest session via
  :func:`write_perf_json`.

Speedups are reported two ways:

* **in-run pairs** — a benchmark that measures both the legacy and the
  production implementation of the same workload records them under
  ``<key>.legacy`` / ``<key>.current``; :func:`write_perf_json` pairs them
  up into a ``speedups`` section;
* **recorded baseline** — if ``benchmarks/BENCH_baseline.json`` exists
  (a committed snapshot of an earlier run), every timing key present in
  both files gets a ``vs_baseline`` speedup.

Report-only mode: when the environment variable ``BENCH_REPORT_ONLY`` is
set (as the CI workflow does), benchmarks should record timings but skip
hard wall-clock assertions — shared runners are too noisy to gate on.
Use :func:`report_only` to query the flag.
"""

import json
import os
import platform
import time

#: Where the JSON artefacts live, relative to this file.
_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_BENCH_DIR)
PERF_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_perf.json")
BASELINE_JSON_PATH = os.path.join(_BENCH_DIR, "BENCH_baseline.json")

#: Process-global registry of this run's measurements.
_TIMINGS = {}
_COUNTERS = {}


def report_only():
    """True when hard wall-clock assertions should be skipped (noisy CI)."""
    return bool(os.environ.get("BENCH_REPORT_ONLY"))


def emit(title, rows):
    """Print a small aligned table of (label, paper, measured) rows."""
    print(f"\n=== {title} ===")
    width = max(len(str(r[0])) for r in rows) + 2
    print(f"{'metric':<{width}} {'paper':>20} {'measured':>20}")
    for label, paper, measured in rows:
        print(f"{str(label):<{width}} {str(paper):>20} {str(measured):>20}")


def record_timing(key, seconds, **meta):
    """Record one wall-clock measurement under a dotted key, e.g.
    ``"e11.deep_chain.current"``."""
    entry = {"seconds": seconds}
    if meta:
        entry["meta"] = meta
    _TIMINGS[key] = entry


def record_counter(key, value):
    """Record a non-timing metric (op counts, sizes, computed ratios)."""
    _COUNTERS[key] = value


def drain_registry(key=None):
    """Snapshot-and-reset the process-global telemetry registry.

    The benchmarks share one Python process (one pytest session), and the
    :data:`repro.telemetry.REGISTRY` counters are process-global — without
    a reset between E-sections, section N's solver/cache/runtime counts
    would leak into section N+1's report.  Every benchmark that reads the
    registry should go through this helper: it returns the snapshot and
    zeroes the registry **in place** (metric identities survive, so hot
    code holding a ``Counter`` reference keeps working).

    When ``key`` is given the snapshot's counters are also recorded under
    that key via :func:`record_counter`, which is how registry-backed
    counts reach ``BENCH_perf.json`` instead of benchmarks reaching into
    module internals.
    """
    from repro.telemetry import REGISTRY

    snapshot = REGISTRY.snapshot()
    REGISTRY.reset()
    if key is not None:
        record_counter(key, snapshot["counters"])
    return snapshot


def time_op(key, fn, *args, repeats=3, meta=None):
    """Run ``fn(*args)`` ``repeats`` times, record the best wall-clock time.

    Returns the result of the final call, so benchmarks can keep asserting
    on it.  Best-of-N is the standard defence against scheduler noise for
    sub-second operations.  ``meta`` is an explicit dict of descriptive
    metadata for the JSON record — deliberately not ``**kwargs``, so
    workload parameters cannot be silently recorded without being passed
    to ``fn``.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    record_timing(key, best, repeats=repeats, **(meta or {}))
    return result


def _load_baseline(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _pair_speedups(timings):
    """Pair ``<key>.legacy`` with ``<key>.current`` measured in this run."""
    speedups = {}
    for key, entry in timings.items():
        if not key.endswith(".legacy"):
            continue
        stem = key[: -len(".legacy")]
        current = timings.get(stem + ".current")
        if current and current["seconds"] > 0:
            speedups[stem] = {
                "legacy_seconds": entry["seconds"],
                "current_seconds": current["seconds"],
                "speedup": entry["seconds"] / current["seconds"],
            }
    return speedups


def _baseline_speedups(timings, baseline):
    """Compare this run's timings against a recorded baseline snapshot."""
    out = {}
    base_timings = (baseline or {}).get("timings", {})
    for key, entry in timings.items():
        base = base_timings.get(key)
        if base and entry["seconds"] > 0:
            out[key] = {
                "baseline_seconds": base["seconds"],
                "current_seconds": entry["seconds"],
                "speedup": base["seconds"] / entry["seconds"],
            }
    return out


def write_perf_json(path=PERF_JSON_PATH, baseline_path=BASELINE_JSON_PATH):
    """Flush the registry to ``path``; returns the report dict (or None).

    Called by ``benchmarks/conftest.py`` at session end.  No-op when nothing
    was recorded (e.g. a test run that deselected the benchmarks).
    """
    if not _TIMINGS and not _COUNTERS:
        return None
    report = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timings": dict(sorted(_TIMINGS.items())),
        "counters": dict(sorted(_COUNTERS.items())),
        "speedups": _pair_speedups(_TIMINGS),
    }
    baseline = _load_baseline(baseline_path)
    if baseline is not None:
        report["baseline_file"] = os.path.relpath(baseline_path, _REPO_ROOT)
        report["vs_baseline"] = _baseline_speedups(_TIMINGS, baseline)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
