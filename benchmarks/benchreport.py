"""Helper for printing paper-vs-measured tables from the benchmark harness."""


def emit(title, rows):
    """Print a small aligned table of (label, paper, measured) rows."""
    print(f"\n=== {title} ===")
    width = max(len(str(r[0])) for r in rows) + 2
    print(f"{'metric':<{width}} {'paper':>20} {'measured':>20}")
    for label, paper, measured in rows:
        print(f"{str(label):<{width}} {str(paper):>20} {str(measured):>20}")
