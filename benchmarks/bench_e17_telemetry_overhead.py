"""E17: telemetry must be near-free when off (the ISSUE-7 tentpole gate).

The :mod:`repro.telemetry` layer threads one ``if tracer.enabled`` /
``if registry.enabled`` guard through the pipeline's hot paths — the
unifier-driven check path and the compiled evaluator's call/trampoline
path.  This benchmark re-runs the two hottest existing workloads with
telemetry **disabled** and gates them against the committed pre-PR
baseline (``BENCH_baseline.json``):

* ``e17.deep_chain.disabled`` — the E11 union-find stress chain
  (:func:`bench_e11_unifier_stress._deep_chain`);
* ``e17.compiled_loop.disabled`` — the E16 compiled unboxed ``sumTo#``
  loop (:func:`bench_e16_compiled_eval._run_loop`).

Gate: each disabled timing must be within :data:`OVERHEAD_CEILING`
(2%) of its baseline, padded by the measured in-run jitter (two
interleaved best-of-N groups; shared machines drift more than 2% on
their own, and the pad keeps the gate about *telemetry* overhead rather
than scheduler luck).  ``BENCH_REPORT_ONLY`` skips the hard gate.

The telemetry-enabled timings are recorded too (``e17.*.enabled`` plus
the overhead ratios) — informative, not gated: tracing is opt-in and
allowed to cost what it costs.
"""

import sys

import pytest

from bench_e11_unifier_stress import DEEP_CHAIN_N, _deep_chain
from bench_e16_compiled_eval import N_UNBOXED, _run_loop
from benchreport import (
    drain_registry,
    emit,
    record_counter,
    record_timing,
    report_only,
)
from repro.infer.unify import UnifierState
from repro.runtime.programs import sum_to_unboxed_module
from repro.telemetry import REGISTRY, TRACER

#: The tentpole gate: disabled-telemetry wall clock vs the pre-PR
#: baseline committed in BENCH_baseline.json.
OVERHEAD_CEILING = 1.02

#: Best-of-N per measurement group; two interleaved groups estimate the
#: in-run jitter that pads the gate.
GROUP_REPEATS = 5

BASELINE_KEYS = {
    "deep_chain": "e17.deep_chain.disabled",
    "compiled_loop": "e17.compiled_loop.disabled",
}


def _workload_deep_chain():
    _deep_chain(UnifierState, DEEP_CHAIN_N)


def _workload_compiled_loop():
    expected = N_UNBOXED * (N_UNBOXED + 1) // 2
    result = _run_loop(sum_to_unboxed_module(), "sumTo#", N_UNBOXED, True)
    assert result == expected


def _best_of(fn, repeats):
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_with_jitter(fn):
    """Two interleaved best-of-N groups: (best, |group spread|)."""
    first = _best_of(fn, GROUP_REPEATS)
    second = _best_of(fn, GROUP_REPEATS)
    return min(first, second), abs(first - second)


def test_report_telemetry_overhead():
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 50 * N_UNBOXED))
    workloads = {
        "deep_chain": _workload_deep_chain,
        "compiled_loop": _workload_compiled_loop,
    }

    # -- disabled: the gated configuration -----------------------------------
    TRACER.disable()
    REGISTRY.enabled = False
    assert not TRACER.enabled and not REGISTRY.enabled
    disabled = {}
    jitter = {}
    for name, fn in workloads.items():
        fn()  # warm-up (codegen, caches) outside the timed groups
        disabled[name], jitter[name] = _measure_with_jitter(fn)
        record_timing(f"e17.{name}.disabled", disabled[name],
                      repeats=2 * GROUP_REPEATS)
        record_counter(f"e17.{name}.jitter_seconds", round(jitter[name], 6))

    # -- enabled: informative, not gated -------------------------------------
    drain_registry()
    TRACER.enable()
    REGISTRY.enable()
    enabled = {}
    for name, fn in workloads.items():
        enabled[name], _ = _measure_with_jitter(fn)
        record_timing(f"e17.{name}.enabled", enabled[name],
                      repeats=2 * GROUP_REPEATS)
        TRACER.drain()  # keep the span buffer bounded between workloads
    TRACER.disable()
    TRACER.drain()
    REGISTRY.enabled = False
    counters = drain_registry("e17.enabled_registry")["counters"]
    assert counters.get("runtime.trampoline_bounces", 0) > 0, \
        "enabled run should have metered the compiled trampoline"

    from benchreport import _load_baseline, BASELINE_JSON_PATH
    baseline = (_load_baseline(BASELINE_JSON_PATH) or {}).get("timings", {})

    rows = []
    for name in workloads:
        ratio = enabled[name] / disabled[name]
        record_counter(f"e17.{name}.enabled_over_disabled", round(ratio, 3))
        base = baseline.get(BASELINE_KEYS[name], {}).get("seconds")
        vs_base = (disabled[name] / base) if base else None
        rows.append((f"{name} disabled",
                     f"baseline {base * 1000:.1f}ms" if base else "no baseline",
                     f"{disabled[name] * 1000:.1f}ms"))
        rows.append((f"{name} enabled", f"{ratio:.2f}x of disabled",
                     f"{enabled[name] * 1000:.1f}ms"))
        if vs_base is not None:
            record_counter(f"e17.{name}.disabled_vs_baseline",
                           round(vs_base, 3))
    emit("E17: telemetry overhead (disabled must stay near the pre-PR "
         "baseline)", rows)

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    for name in workloads:
        base = baseline.get(BASELINE_KEYS[name], {}).get("seconds")
        assert base is not None, \
            f"missing {BASELINE_KEYS[name]} in BENCH_baseline.json"
        ceiling = base * OVERHEAD_CEILING + jitter[name]
        assert disabled[name] <= ceiling, (
            f"{name} with telemetry disabled took {disabled[name]:.6f}s — "
            f"over the {OVERHEAD_CEILING:.0%} ceiling on the "
            f"{base:.6f}s baseline even after the {jitter[name]:.6f}s "
            f"in-run jitter pad")
