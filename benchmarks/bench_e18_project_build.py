"""E18: cross-module incremental builds on a layered N-module project.

The tentpole measurement of the project layer: ``NUM_MODULES`` modules in
an import chain (each importing its predecessor and calling into its
exports, every module ``BINDINGS_PER_MODULE`` bindings deep) are built
cold into a schema-v3 cache; then a **single function body** in the base
module is edited without changing its exported scheme and the project is
rebuilt warm.

Recorded into ``BENCH_perf.json``:

* ``e18.cold_build``   — full project build populating the cache;
* ``e18.warm_noop``    — rebuild with nothing edited (outline + exports
  side-tables reconstruct the module DAG without parsing; every module is
  a whole-file hit);
* ``e18.body_edit``    — rebuild after the body-only edit: exactly **one
  unit** re-checks, and no importing module is even re-parsed
  (cross-file early cutoff);
* ``e18.scheme_edit``  — rebuild after changing the base module's
  exported scheme: precisely the downstream units naming it re-check;
* counters: module/unit counts, per-scenario misses, and the headline
  ``e18.speedup.body_edit_vs_cold`` ratio (gated at ≥ 5× unless
  ``BENCH_REPORT_ONLY``).

Correctness is asserted always: warm results must be byte-identical to
cold ones, and the body-edit rebuild must re-check exactly one unit.
"""

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.driver import (
    CheckStats,
    DriverOptions,
    ResultCache,
    Session,
    check_project,
)
from repro.driver.batch import payload_bytes, result_to_payload
from repro.telemetry import REGISTRY

NUM_MODULES = 16
BINDINGS_PER_MODULE = 4
SPEEDUP_FLOOR = 5.0   # warm body-only edit vs cold full build


def make_project(num_modules=NUM_MODULES,
                 bindings=BINDINGS_PER_MODULE):
    """A chain of modules: ``M1 <- M2 <- ... <- Mn``.

    Each module's head binding calls the previous module's head across
    the import boundary (module 1 bottoms out on a recursive unboxed
    loop), followed by a few local helpers — so every module has both a
    cross-module dependency and local units the cache must keep apart.
    """
    items = []
    for m in range(1, num_modules + 1):
        lines = [f"module M{m} where"]
        if m > 1:
            lines.append(f"import M{m - 1}")
        lines.append("")
        if m == 1:
            lines.append("head1 :: Int# -> Int#")
            lines.append("head1 n = case n <=# 0# of "
                         "{ 1# -> 0#; _ -> n +# head1 (n -# 1#) }")
        else:
            lines.append(f"head{m} :: Int# -> Int#")
            lines.append(f"head{m} n = head{m - 1} (n +# {m}#)")
        for b in range(1, bindings):
            lines.append(f"local{m}_{b} :: Int#")
            lines.append(f"local{m}_{b} = head{m} {b}#")
        lines.append("")
        items.append((f"m{m}.lev", "\n".join(lines)))
    return items


def project_bytes(results):
    return [payload_bytes(result_to_payload(result)) for result in results]


def test_report_project_build(tmp_path):
    items = make_project()
    cache_path = str(tmp_path / "e18-cache.json")
    session = Session()

    # -- cold build: populate the cache ---------------------------------------
    cold_stats = CheckStats()
    cold_cache = ResultCache(cache_path)
    cold = time_op(
        "e18.cold_build",
        lambda: check_project(items, cache=cold_cache, session=session,
                              stats=cold_stats),
        repeats=1, meta={"modules": NUM_MODULES,
                         "bindings": NUM_MODULES * BINDINGS_PER_MODULE})
    assert cold.ok, [d.pretty() for r in cold.results
                     for d in r.diagnostics][:3]
    cold_cache.save()
    record_counter("e18.modules", NUM_MODULES)
    record_counter("e18.units", cold_stats.units)

    def throwaway_cache():
        """A warm cache that never persists: every repeat starts from the
        pristine cold state."""
        warm = ResultCache(cache_path)
        warm.path = None
        return warm

    def rebuild(edited_items, stats=None):
        return check_project(edited_items, cache=throwaway_cache(),
                             session=Session(), stats=stats)

    # -- warm no-op: DAG from outlines, every module a file hit ---------------
    noop_stats = CheckStats()
    noop = time_op("e18.warm_noop", lambda: rebuild(items, noop_stats),
                   repeats=3, meta={"modules": NUM_MODULES})
    assert noop_stats.checked == 0
    assert project_bytes(noop.results) == project_bytes(cold.results)
    # Store-level shape of the warm no-op (schema v4): outline + file
    # entries only, nothing written back.
    probe = throwaway_cache()
    check_project(items, cache=probe, session=Session())
    assert probe.shards_written == 0
    record_counter("e18.store.warm_shards_read", probe.shards_read)
    record_counter("e18.store.warm_shards_written", probe.shards_written)

    # -- warm no-op through the session's hot tier ----------------------------
    tier = session.store_hot_tier()
    check_project(items, cache=cache_path, session=session)  # charge it
    hits_before = tier.hits
    hot_noop = time_op(
        "e18.warm_noop_hot",
        lambda: check_project(items, cache=cache_path, session=session),
        repeats=3, meta={"modules": NUM_MODULES})
    assert tier.hits > hits_before, "hot tier never engaged"
    assert project_bytes(hot_noop.results) == project_bytes(cold.results)
    record_counter("e18.store.hot_hits", tier.hits)

    # -- the headline: body-only edit in the base module ----------------------
    base_name, base_source = items[0]
    edited_source = base_source.replace("1# -> 0#", "1# -> 0# +# 0#")
    assert edited_source != base_source
    edited_items = [(base_name, edited_source)] + items[1:]
    edit_results = time_op(
        "e18.body_edit", lambda: rebuild(edited_items),
        repeats=3, meta={"modules": NUM_MODULES, "edited": "head1"})
    edit_stats = CheckStats()
    rebuild(edited_items, edit_stats)
    # head1's exported scheme is unchanged: every importing module stays
    # a whole-file hit (no re-parse), and only head1's unit re-checks.
    assert edit_stats.checked == 1, edit_stats.pretty()
    assert edit_stats.file_hits == NUM_MODULES - 1
    record_counter("e18.body_edit.checked", edit_stats.checked)
    record_counter("e18.body_edit.file_hits", edit_stats.file_hits)
    # Byte-identity against a cold from-scratch build of the edited state.
    scratch = check_project(edited_items, session=Session())
    assert project_bytes(scratch.results) == \
        project_bytes(edit_results.results)

    # -- scheme change: precisely the consumers re-check ----------------------
    scheme_edited = base_source.replace(
        "head1 :: Int# -> Int#\nhead1 n = case n <=# 0# of "
        "{ 1# -> 0#; _ -> n +# head1 (n -# 1#) }",
        "head1 :: Int -> Int\nhead1 n = n")
    assert scheme_edited != base_source
    scheme_stats = CheckStats()
    scheme_check = time_op(
        "e18.scheme_edit",
        lambda: rebuild([(base_name, scheme_edited)] + items[1:],
                        scheme_stats),
        repeats=1, meta={"modules": NUM_MODULES})
    # M1's units re-check; M2 names head1 and re-checks (now failing);
    # the failure propagates down the chain per-unit, but modules whose
    # referenced schemes are all unchanged would still hit — here every
    # module names its predecessor's (changed) head, so all re-open.
    assert scheme_stats.checked >= 2
    assert not scheme_check.ok
    record_counter("e18.scheme_edit.checked", scheme_stats.checked)

    # -- canonical_scheme memo: repeated key derivation on this corpus -------
    compiled_session = Session(DriverOptions(compiled=True))
    base_check = compiled_session.check(base_source, base_name)
    assert base_check.ok
    renders = REGISTRY.counter("solver.scheme_renders")
    render_hits = REGISTRY.counter("solver.scheme_render_hits")
    memo_cache = str(tmp_path / "e18-memo-cache")
    base_renders, base_hits = renders.value, render_hits.value
    compiled_session.run_from_check(base_check, entry="local1_1",
                                    cache=memo_cache)
    first_pass = renders.value - base_renders
    assert first_pass > 0 and render_hits.value == base_hits
    compiled_session.run_from_check(base_check, entry="local1_1",
                                    cache=memo_cache)
    memo_hits = render_hits.value - base_hits
    assert memo_hits == first_pass, \
        "every repeat render must hit the memo"
    record_counter("e18.scheme_memo.renders", renders.value - base_renders)
    record_counter("e18.scheme_memo.hits", memo_hits)
    record_counter("e18.scheme_memo.hit_rate",
                   round(memo_hits / (renders.value - base_renders), 4))

    # -- report ---------------------------------------------------------------
    import benchreport
    cold_s = benchreport._TIMINGS["e18.cold_build"]["seconds"]
    noop_s = benchreport._TIMINGS["e18.warm_noop"]["seconds"]
    edit_s = benchreport._TIMINGS["e18.body_edit"]["seconds"]
    speedup = cold_s / edit_s if edit_s > 0 else float("inf")
    record_counter("e18.speedup.body_edit_vs_cold", round(speedup, 2))
    record_counter("e18.speedup.warm_noop_vs_cold",
                   round(cold_s / noop_s, 2) if noop_s > 0 else 0)

    emit(f"E18: cross-module incremental build ({NUM_MODULES} modules, "
         f"{NUM_MODULES * BINDINGS_PER_MODULE} bindings)", [
             ("cold full build", "baseline", f"{cold_s * 1000:.1f}ms"),
             ("warm no-op", f"{cold_s / noop_s:.1f}x vs cold",
              f"{noop_s * 1000:.1f}ms"),
             ("warm no-op, hot tier",
              f"{cold_s / benchreport._TIMINGS['e18.warm_noop_hot']['seconds']:.1f}x vs cold",
              f"{benchreport._TIMINGS['e18.warm_noop_hot']['seconds'] * 1000:.1f}ms"),
             ("body-only edit", f"{speedup:.1f}x vs cold",
              f"{edit_s * 1000:.1f}ms"),
             ("scheme-changing edit", f"{scheme_stats.checked} unit(s) "
              "re-checked", "precise invalidation"),
         ])

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm body-only rebuild was only {speedup:.1f}x faster than a "
        f"cold full build (floor: {SPEEDUP_FLOOR}x)")
