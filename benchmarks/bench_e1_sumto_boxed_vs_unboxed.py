"""E1 (Section 2.1): the boxed vs unboxed ``sumTo`` loop.

Paper claim: 10,000,000 iterations run in < 0.01 s with unboxed ``Int#`` but
take > 2 s with boxed ``Int`` — a two-orders-of-magnitude gap caused entirely
by memory traffic (boxes, thunks, pointer chasing).

Our substitute (documented in DESIGN.md) is the cost-model evaluator: we
report the operation counters and the synthetic cycle estimate for both
versions of the loop at several sizes.  The shape to verify: the unboxed
loop performs *zero* memory traffic while the boxed loop allocates several
cells per iteration, giving a 10x-100x cycle gap that grows with n.
"""

import pytest

from benchreport import emit, time_op
from repro.runtime import run_sum_to_boxed, run_sum_to_unboxed

SIZES = (50, 200, 500)


def _rows(n):
    boxed_result, boxed = run_sum_to_boxed(n)
    unboxed_result, unboxed = run_sum_to_unboxed(n)
    assert boxed_result == unboxed_result == n * (n + 1) // 2
    ratio = boxed.estimated_cycles() / max(1, unboxed.estimated_cycles())
    return [
        (f"n={n} boxed allocations", "O(n) cells", boxed.heap_allocations),
        (f"n={n} unboxed allocations", "0", unboxed.heap_allocations),
        (f"n={n} boxed memory traffic", "large", boxed.memory_traffic()),
        (f"n={n} unboxed memory traffic", "none", unboxed.memory_traffic()),
        (f"n={n} cycle ratio boxed/unboxed", ">100x (wall-clock)",
         f"{ratio:.1f}x (cost model)"),
    ]


def test_report_sumto_comparison():
    rows = []
    for n in SIZES:
        rows.extend(_rows(n))
    emit("E1: sumTo boxed vs unboxed (Section 2.1)", rows)
    # Wall-clock record for BENCH_perf.json (cost-model evaluator runs).
    time_op("e1.sum_to_boxed.current", run_sum_to_boxed, 500,
            meta={"n": 500})
    time_op("e1.sum_to_unboxed.current", run_sum_to_unboxed, 500,
            meta={"n": 500})
    # Shape assertions: unboxed never touches the heap; boxed is much slower.
    for n in SIZES:
        _, boxed = run_sum_to_boxed(n)
        _, unboxed = run_sum_to_unboxed(n)
        assert unboxed.memory_traffic() == 0
        assert boxed.estimated_cycles() > 10 * unboxed.estimated_cycles()


@pytest.mark.benchmark(group="e1-sumto")
def test_bench_sum_to_boxed(benchmark):
    result, _ = benchmark(run_sum_to_boxed, 200)
    assert result == 200 * 201 // 2


@pytest.mark.benchmark(group="e1-sumto")
def test_bench_sum_to_unboxed(benchmark):
    result, _ = benchmark(run_sum_to_unboxed, 200)
    assert result == 200 * 201 // 2
