"""E2 (Figure 1): the boxity × levity classification grid.

Paper claim: three of the four boxity/levity combinations are inhabited —
lifted+boxed (Int, Bool), unlifted+boxed (ByteArray#), unlifted+unboxed
(Int#, Char#) — and the lifted+unboxed corner is empty because lifted types
must be represented by pointers to (possible) thunks.
"""

import pytest

from benchreport import emit
from repro.surface.types import (
    ARRAY_HASH_TY,
    BOOL_TY,
    BYTEARRAY_HASH_TY,
    CHAR_HASH_TY,
    DOUBLE_HASH_TY,
    INT_HASH_TY,
    INT_TY,
    TyApp,
    kind_of_type,
)
from repro.core.rep import all_nullary_reps

GRID = {
    "Int": (INT_TY, "boxed", "lifted"),
    "Bool": (BOOL_TY, "boxed", "lifted"),
    "ByteArray#": (BYTEARRAY_HASH_TY, "boxed", "unlifted"),
    "Array# Int": (TyApp(ARRAY_HASH_TY, INT_TY), "boxed", "unlifted"),
    "Int#": (INT_HASH_TY, "unboxed", "unlifted"),
    "Char#": (CHAR_HASH_TY, "unboxed", "unlifted"),
    "Double#": (DOUBLE_HASH_TY, "unboxed", "unlifted"),
}


def classify(type_):
    rep = kind_of_type(type_).rep
    return ("boxed" if rep.is_boxed() else "unboxed",
            "lifted" if rep.is_lifted() else "unlifted")


def test_report_figure1_grid():
    rows = []
    for name, (type_, boxity, levity) in GRID.items():
        measured = classify(type_)
        rows.append((name, f"{boxity}/{levity}",
                     f"{measured[0]}/{measured[1]}"))
        assert measured == (boxity, levity)
    rows.append(("lifted+unboxed corner", "empty",
                 "empty" if not any(r.is_lifted() and not r.is_boxed()
                                    for r in all_nullary_reps())
                 else "INHABITED"))
    emit("E2: Figure 1 boxity x levity grid", rows)


@pytest.mark.benchmark(group="e2-classification")
def test_bench_classification(benchmark):
    def run():
        return [classify(type_) for type_, _, _ in GRID.values()]
    result = benchmark(run)
    assert len(result) == len(GRID)
