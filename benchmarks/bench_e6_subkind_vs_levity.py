"""E6 (Sections 3.2-3.3, 9.4): the OpenKind baseline vs levity polymorphism.

Paper claims reproduced:
* under sub-kinding, the magical ``error`` works at unlifted types but a
  user-written ``myError`` wrapper silently loses the magic;
* under levity polymorphism the wrapper can be given (and is checked against)
  the fully general type;
* the legacy ``#`` kind erases calling conventions (all unlifted types share
  it), which is why type families returning unlifted types were banned.
"""

import pytest

from benchreport import emit
from repro.core.kinds import REP_KIND
from repro.infer import infer_binding
from repro.subkind import (
    LEGACY_ERROR,
    hash_kind_loses_calling_convention,
    legacy_infer_wrapper_kind,
    legacy_instantiation_ok,
)
from repro.surface.ast import EApp, ELitString, EVar
from repro.surface.prelude import prelude_env
from repro.surface.types import (
    Binder,
    CHAR_HASH_TY,
    DOUBLE_HASH_TY,
    ForAllTy,
    INT_HASH_TY,
    INT_TY,
    STRING_TY,
    TyVar,
    UnboxedTupleTy,
    fun,
    rep_var_kind,
)

MY_ERROR_SIG = ForAllTy(
    (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
    fun(STRING_TY, TyVar("a", rep_var_kind("r"))))
MY_ERROR_RHS = EApp(EVar("error"), ELitString("Program error"))


def _levity_my_error_ok():
    result = infer_binding("myError", ["s"], MY_ERROR_RHS,
                           signature=MY_ERROR_SIG, env=prelude_env())
    return result.ok and result.scheme.is_levity_polymorphic()


def test_report_error_and_myerror():
    wrapper = legacy_infer_wrapper_kind(LEGACY_ERROR)
    rows = [
        ("legacy: error @Int#", "accepted (magic)",
         "accepted" if legacy_instantiation_ok(LEGACY_ERROR, INT_HASH_TY)
         else "rejected"),
        ("legacy: myError @Int#", "rejected (magic lost)",
         "accepted" if legacy_instantiation_ok(wrapper, INT_HASH_TY)
         else "rejected"),
        ("legacy: myError @Int", "accepted",
         "accepted" if legacy_instantiation_ok(wrapper, INT_TY)
         else "rejected"),
        ("levity: myError with declared rep-poly type", "accepted",
         "accepted" if _levity_my_error_ok() else "rejected"),
    ]
    emit("E6: error/myError under sub-kinding vs levity polymorphism", rows)
    assert legacy_instantiation_ok(LEGACY_ERROR, INT_HASH_TY)
    assert not legacy_instantiation_ok(wrapper, INT_HASH_TY)
    assert _levity_my_error_ok()


def test_report_hash_kind_information_loss():
    report = hash_kind_loses_calling_convention(
        (INT_HASH_TY, CHAR_HASH_TY, DOUBLE_HASH_TY,
         UnboxedTupleTy((INT_TY, INT_TY))))
    rows = [(name, entry["legacy_kind"],
             f"{entry['modern_kind']} {entry['register_shape']}")
            for name, entry in report.items() if isinstance(entry, dict)]
    rows.append(("distinct calling conventions under one legacy kind",
                 "yes (the problem)",
                 "yes" if report["calling_conventions_distinct"] else "no"))
    emit("E6: '#' erases calling conventions; TYPE r keeps them", rows)
    assert report["legacy_kinds_all_equal"]
    assert report["calling_conventions_distinct"]


@pytest.mark.benchmark(group="e6-baseline")
def test_bench_levity_signature_check(benchmark):
    def run():
        return infer_binding("myError", ["s"], MY_ERROR_RHS,
                             signature=MY_ERROR_SIG, env=prelude_env()).ok
    assert benchmark(run)


@pytest.mark.benchmark(group="e6-baseline")
def test_bench_legacy_instantiation_check(benchmark):
    def run():
        return [legacy_instantiation_ok(LEGACY_ERROR, t)
                for t in (INT_TY, INT_HASH_TY, DOUBLE_HASH_TY)]
    assert all(benchmark(run))
