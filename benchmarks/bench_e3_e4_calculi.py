"""E3 + E4 (Figures 2-6): the L calculus metatheory and the M machine.

E3 — Preservation and Progress hold on every step of randomly generated,
well-typed L programs (Section 6.1's theorems, checked executably).

E4 — the M machine runs compiled programs with explicit stack and heap,
implementing thunk sharing (EVAL/FCE) and the two register classes.
"""

import pytest

from benchreport import emit
from repro.compile import compile_and_run
from repro.lang_l import Context, evaluate, type_of
from repro.lang_l.examples import WELL_TYPED
from repro.metatheory import check_all, generate_corpus

CORPUS = generate_corpus(50, seed=7, depth=4)


def test_report_l_metatheory():
    checked = 0
    failures = 0
    steps = 0
    for _, program in CORPUS:
        report = check_all(program, max_steps=40,
                           check_simulation_steps=False)
        checked += len(report.reports)
        steps += report.program_steps
        failures += len(report.failures())
    emit("E3: L type safety (Preservation + Progress + Compilation)", [
        ("random programs", "-", len(CORPUS)),
        ("reduction steps covered", "-", steps),
        ("theorem instances checked", "all hold", checked),
        ("failures", "0", failures),
    ])
    assert failures == 0


def test_report_m_machine_costs():
    from repro.lang_l.examples import WELL_TYPED
    rows = []
    for example in WELL_TYPED:
        if example.expected_value is None and not example.diverges:
            continue
        result = compile_and_run(example.expr)
        rows.append((example.name, "runs on M",
                     f"{result.costs.steps} steps, "
                     f"{result.costs.heap_allocations} allocs"))
    emit("E4: compiled examples on the M machine", rows)
    assert rows


@pytest.mark.benchmark(group="e3-l-semantics")
def test_bench_l_evaluation(benchmark):
    programs = [p for _, p in CORPUS[:10]]

    def run():
        return [evaluate(p, max_steps=100_000).steps for p in programs]
    benchmark(run)


@pytest.mark.benchmark(group="e3-l-typing")
def test_bench_l_typechecking(benchmark):
    programs = [p for _, p in CORPUS]

    def run():
        return [type_of(Context(), p) for p in programs]
    benchmark(run)


@pytest.mark.benchmark(group="e4-m-machine")
def test_bench_m_machine(benchmark):
    programs = [e.expr for e in WELL_TYPED if e.expected_value is not None]

    def run():
        return [compile_and_run(p).costs.steps for p in programs]
    benchmark(run)
