"""E20: the sharded content-addressed cache store vs the monolithic file.

The tentpole measurement of the schema-v4 store (``repro.driver.store``):
a synthetic cache of ``NUM_ENTRIES`` unit-shaped entries is written once
through :class:`~repro.driver.store.ShardStore` and once as the old
monolithic v3 document, then the workloads that used to scale with
*corpus history* are timed against both layouts:

* ``e20.warm_noop.legacy`` / ``.current`` — the no-change probe: the
  monolithic layout must parse the whole document to answer any lookup;
  the sharded store reads only the shards it probes (gated at >= 5x at
  10k entries unless ``BENCH_REPORT_ONLY``);
* ``e20.single_edit.legacy`` / ``.current`` — persisting one changed
  entry: whole-document read-merge-rewrite vs exactly the dirty shards
  (the save is asserted — always — to write <= 2 shard files);
* ``e20.warm_noop_hot`` — the same probe served from a shared
  :class:`~repro.driver.store.HotTier`, touching no files at all;
* ``e20.check_warm_noop`` — an end-to-end ``check_many`` no-op against a
  cache padded with the full synthetic corpus, proving the O(touched)
  property survives the driver stack (byte-identical results, a handful
  of shards read);
* two **processes** racing ``save()`` on one store directory, released
  by a barrier: the union of both write sets must survive (asserted
  always — this is the multi-writer contract the ROADMAP's
  checking-as-a-service story leans on);
* counters: per-scenario ``shards_read`` / ``shards_written``, hot-tier
  hit counts, and the process-wide ``cache.store.*`` registry counters.
"""

import hashlib
import json
import multiprocessing
import os

import pytest

from benchreport import drain_registry, emit, record_counter, report_only, \
    time_op
from repro.driver import ResultCache, Session
from repro.driver.batch import payload_bytes, result_to_payload
from repro.driver.store import HotTier, ShardStore
from repro.telemetry import REGISTRY

NUM_ENTRIES = 10_000
PROBES = 8                    # keys a warm no-op actually touches
WARM_NOOP_SPEEDUP_FLOOR = 5.0
SINGLE_EDIT_MAX_SHARDS = 2    # the edited unit + the file-level entry
STRESS_WRITES = 1_000         # per writer process


def _key(i):
    return hashlib.sha256(f"e20-entry-{i}".encode()).hexdigest()


def _payload(i):
    """A unit-payload-shaped entry of realistic size (~200 bytes)."""
    return {"members": [{
        "name": f"b{i}",
        "rendered": f"b{i} :: forall (r :: Rep). Int# -> Int#",
        "ok": True,
        "defaulted_rep_vars": ["r"],
        "span": [0, 1, 1, 1, 10],
        "scheme_src": "forall (r :: Rep). Int# -> Int#",
        "diagnostics": [],
    }]}


def make_corpus(num=NUM_ENTRIES):
    return {_key(i): _payload(i) for i in range(num)}


def _stress_writer(root, tag, count, barrier):
    store = ShardStore(root)
    for i in range(count):
        store.put(hashlib.sha256(f"stress-{tag}-{i}".encode()).hexdigest(),
                  {"writer": tag, "i": i})
    barrier.wait()  # line both saves up behind the barrier
    store.save()


def test_report_cache_store(tmp_path):
    drain_registry()  # isolate this section's cache.store.* counters
    corpus = make_corpus()
    probes = [_key(i) for i in range(0, NUM_ENTRIES, NUM_ENTRIES // PROBES)]

    # -- the two layouts, same 10k entries -----------------------------------
    sharded_root = str(tmp_path / "sharded")
    seed = ShardStore(sharded_root)
    for key, payload in corpus.items():
        seed.put(key, payload)
    seed.save()
    record_counter("e20.entries", NUM_ENTRIES)
    record_counter("e20.seed.shards_written", seed.shards_written)

    monolithic_path = str(tmp_path / "monolithic.json")
    with open(monolithic_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": 3, "entries": corpus}, handle, sort_keys=True)
    record_counter("e20.monolithic_bytes", os.path.getsize(monolithic_path))

    # -- warm no-op: probe a handful of keys ---------------------------------
    def monolithic_noop():
        with open(monolithic_path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)["entries"]
        return [entries[key] for key in probes]

    def sharded_noop():
        store = ShardStore(sharded_root)
        found = [store.get(key) for key in probes]
        assert store.save() == 0    # nothing dirty: nothing written
        return found, store

    legacy_found = time_op("e20.warm_noop.legacy", monolithic_noop,
                           repeats=3, meta={"entries": NUM_ENTRIES,
                                            "probes": PROBES})
    found, probe_store = time_op("e20.warm_noop.current", sharded_noop,
                                 repeats=3, meta={"entries": NUM_ENTRIES,
                                                  "probes": PROBES})
    assert found == legacy_found, "layouts disagree on the probed entries"
    assert probe_store.shards_read <= PROBES
    record_counter("e20.warm_noop.shards_read", probe_store.shards_read)

    # -- the same probe against a warm hot tier: no files at all -------------
    hot = HotTier()
    ShardStore(sharded_root, hot=hot).get(probes[0])  # charge the tier
    for key in probes:
        ShardStore(sharded_root, hot=hot).get(key)

    def hot_noop():
        store = ShardStore(sharded_root, hot=hot)
        found = [store.get(key) for key in probes]
        assert store.shards_read == 0
        return found

    assert time_op("e20.warm_noop_hot", hot_noop, repeats=3,
                   meta={"probes": PROBES}) == legacy_found
    record_counter("e20.hot.hits", hot.hits)
    record_counter("e20.hot.shards", len(hot))

    # -- single edit: persist one changed entry ------------------------------
    edited_key = probes[0]

    def monolithic_single_edit():
        with open(monolithic_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["entries"][edited_key] = _payload(-1)
        with open(monolithic_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)

    counter = iter(range(10_000))

    def sharded_single_edit():
        store = ShardStore(sharded_root)
        store.put(edited_key, {"edit": next(counter)})
        store.put(f"pfile:{edited_key}", {"edit": "file entry"})
        written = store.save()
        assert written <= SINGLE_EDIT_MAX_SHARDS, \
            f"single edit rewrote {written} shards"
        return store

    time_op("e20.single_edit.legacy", monolithic_single_edit, repeats=3,
            meta={"entries": NUM_ENTRIES})
    edit_store = time_op("e20.single_edit.current", sharded_single_edit,
                         repeats=3, meta={"entries": NUM_ENTRIES})
    record_counter("e20.single_edit.shards_written",
                   edit_store.shards_written)
    # Put the seed corpus back so later sections see pristine entries.
    restore = ShardStore(sharded_root)
    restore.put(edited_key, corpus[edited_key])
    restore.save()

    # -- two processes, one store, saves released together -------------------
    stress_root = str(tmp_path / "stress")
    context = multiprocessing.get_context("fork") \
        if "fork" in multiprocessing.get_all_start_methods() \
        else multiprocessing.get_context()
    barrier = context.Barrier(2)
    writers = [context.Process(target=_stress_writer,
                               args=(stress_root, tag, STRESS_WRITES,
                                     barrier))
               for tag in ("a", "b")]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(120)
        assert writer.exitcode == 0
    survived = ShardStore(stress_root).load_all()
    lost = 2 * STRESS_WRITES - len(survived)
    record_counter("e20.stress.entries", len(survived))
    record_counter("e20.stress.lost", lost)
    assert lost == 0, f"concurrent writers lost {lost} entries"
    assert ShardStore(stress_root).verify() == []

    # -- end-to-end: a check_many no-op against the padded cache -------------
    check_corpus = [(f"p{i}.lev",
                     f"f{i} :: Int# -> Int#\nf{i} n = n +# {i}#\n")
                    for i in range(4)]
    check_root = str(tmp_path / "check-cache")
    cold = Session().check_many(check_corpus, cache=check_root)
    pad = ShardStore(check_root)
    for key, payload in corpus.items():
        pad.put(key, payload)
    pad.save()

    def warm_check():
        warm_cache = ResultCache(check_root)
        results = Session().check_many(check_corpus, cache=warm_cache)
        assert warm_cache.file_hits == len(check_corpus)
        assert warm_cache.shards_written == 0
        return results, warm_cache

    warm, warm_cache = time_op("e20.check_warm_noop", warm_check, repeats=3,
                               meta={"programs": len(check_corpus),
                                     "padding_entries": NUM_ENTRIES})
    assert [payload_bytes(result_to_payload(r)) for r in warm] == \
        [payload_bytes(result_to_payload(r)) for r in cold], \
        "warm results must be byte-identical to cold ones"
    assert warm_cache.shards_read <= len(check_corpus), \
        "a warm no-op read more shards than it has files"
    record_counter("e20.check_warm_noop.shards_read",
                   warm_cache.shards_read)
    record_counter("e20.store",
                   REGISTRY.counters_with_prefix("cache.store."))

    # -- report ---------------------------------------------------------------
    import benchreport
    legacy_s = benchreport._TIMINGS["e20.warm_noop.legacy"]["seconds"]
    current_s = benchreport._TIMINGS["e20.warm_noop.current"]["seconds"]
    hot_s = benchreport._TIMINGS["e20.warm_noop_hot"]["seconds"]
    edit_legacy_s = benchreport._TIMINGS["e20.single_edit.legacy"]["seconds"]
    edit_current_s = \
        benchreport._TIMINGS["e20.single_edit.current"]["seconds"]
    speedup = legacy_s / current_s if current_s > 0 else float("inf")
    record_counter("e20.speedup.warm_noop_vs_monolithic", round(speedup, 2))
    record_counter("e20.speedup.single_edit_vs_monolithic",
                   round(edit_legacy_s / edit_current_s, 2)
                   if edit_current_s > 0 else 0)

    emit(f"E20: sharded cache store ({NUM_ENTRIES} entries)", [
        ("warm no-op, monolithic", "reads everything",
         f"{legacy_s * 1000:.1f}ms"),
        ("warm no-op, sharded", f"{speedup:.1f}x vs monolithic",
         f"{current_s * 1000:.1f}ms "
         f"({probe_store.shards_read} shard(s))"),
        ("warm no-op, hot tier", "no file I/O",
         f"{hot_s * 1000:.2f}ms"),
        ("single edit persist", f"{edit_legacy_s / edit_current_s:.1f}x "
         "vs monolithic",
         f"{edit_current_s * 1000:.1f}ms "
         f"({edit_store.shards_written} shard(s))"),
        ("two-writer stress", "0 entries lost",
         f"{len(survived)} survived"),
    ])

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert speedup >= WARM_NOOP_SPEEDUP_FLOOR, (
        f"sharded warm no-op was only {speedup:.1f}x faster than the "
        f"monolithic layout at {NUM_ENTRIES} entries "
        f"(floor: {WARM_NOOP_SPEEDUP_FLOOR}x)")
