"""E8 (Section 7.3): levity-polymorphic type classes via dictionaries.

Paper claims reproduced:
* the generalised ``Num (a :: TYPE r)`` admits an ``Int#`` instance, so
  ``3# + 4#`` type-checks and evaluates without boxing the operands;
* the dictionary is an ordinary lifted record and the per-instance methods
  are fully monomorphic;
* ``abs1 = abs`` is accepted while its η-expansion ``abs2 x = abs x`` is
  rejected — compiled arity 1 vs 2.
"""

import pytest

from benchreport import emit
from repro.classes import (
    ABS1_BINDING,
    ABS2_BINDING,
    ABS_SIGNATURE,
    dictionary_binding,
    method_reference_arity,
    selector_arity,
    standard_class_env,
)
from repro.core.errors import LevityError
from repro.infer import Inferencer, infer_binding, infer_expr
from repro.runtime import Evaluator, Program, UnboxedInt
from repro.surface.ast import ELitIntHash, EVar, apply
from repro.surface.prelude import prelude_env
from repro.surface.types import INT_HASH_TY


def _setup():
    inferencer = Inferencer()
    env = prelude_env()
    class_env = standard_class_env(True, inferencer, env)
    return class_env, env.bind_many(class_env.all_method_schemes())


def test_report_levity_polymorphic_num():
    class_env, env = _setup()
    info = class_env.class_info("Num")
    plus_type = infer_expr(apply(EVar("+"), ELitIntHash(3), ELitIntHash(4)),
                           env=env, class_env=class_env)

    evaluator = Evaluator(Program(class_env=class_env))
    value = evaluator.eval(apply(EVar("+"), ELitIntHash(3), ELitIntHash(4)))
    result = evaluator.int_result(value)
    boxes = evaluator.costs.heap_allocations

    try:
        infer_binding(ABS2_BINDING.name, ABS2_BINDING.params,
                      ABS2_BINDING.rhs, signature=ABS_SIGNATURE, env=env,
                      class_env=class_env)
        abs2_verdict = "accepted"
    except LevityError:
        abs2_verdict = "rejected"
    abs1_ok = infer_binding(ABS1_BINDING.name, ABS1_BINDING.params,
                            ABS1_BINDING.rhs, signature=ABS_SIGNATURE,
                            env=env, class_env=class_env).ok

    name, expr = dictionary_binding(info,
                                    class_env.lookup_instance("Num",
                                                              INT_HASH_TY))
    rows = [
        ("3# + 4# type", "Int#", plus_type.pretty()),
        ("3# + 4# value", "7#", f"{result}#"),
        ("operand boxes allocated", "0", boxes),
        ("$dNumInt# dictionary", "MkNum (+#) ... (monomorphic)",
         f"{name} = {expr.pretty()[:40]}..."),
        ("abs1 = abs", "accepted (arity 1)",
         f"{'accepted' if abs1_ok else 'rejected'} "
         f"(arity {selector_arity(info, 'abs')})"),
        ("abs2 x = abs x", "rejected (arity 2)",
         f"{abs2_verdict} (arity {method_reference_arity(info, 'abs', 1)})"),
    ]
    emit("E8: levity-polymorphic Num and abs1/abs2 (Section 7.3)", rows)
    assert result == 7 and boxes == 0
    assert abs1_ok and abs2_verdict == "rejected"


@pytest.mark.benchmark(group="e8-classes")
def test_bench_unboxed_class_arithmetic(benchmark):
    class_env, _ = _setup()

    def run():
        evaluator = Evaluator(Program(class_env=class_env))
        value = evaluator.eval(apply(EVar("+"), ELitIntHash(3),
                                     ELitIntHash(4)))
        return evaluator.int_result(value)
    assert benchmark(run) == 7


@pytest.mark.benchmark(group="e8-classes")
def test_bench_dictionary_construction(benchmark):
    class_env, _ = _setup()

    def run():
        evaluator = Evaluator(Program(class_env=class_env))
        dictionary = evaluator.build_dictionary("Num", INT_HASH_TY)
        plus = evaluator.select_method(dictionary, "+")
        return evaluator.int_result(
            evaluator.apply_value(evaluator.apply_value(plus, UnboxedInt(1)),
                                  UnboxedInt(2)))
    assert benchmark(run) == 3
