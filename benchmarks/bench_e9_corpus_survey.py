"""E9 (Section 8.1): the base/ghc-prim survey.

Paper claims reproduced:
* six library functions were levity-generalised (error,
  errorWithoutStackTrace, ⊥/undefined, oneShot, runRW#, ($));
* 34 of the 76 classes in base and ghc-prim can be levity-generalised.
  Our conservative analysis over the reconstructed corpus finds a somewhat
  smaller set (see EXPERIMENTS.md for the per-class differences); the shape
  — a substantial fraction of the standard classes generalise with no
  changes to their instances — is reproduced.
"""

import pytest

from benchreport import emit
from repro.corpus import survey_classes, survey_functions


def test_report_function_survey():
    survey = survey_functions()
    rows = [(entry.name, "levity-generalised",
             "verified levity-polymorphic scheme"
             if survey.verified[entry.name] else "NOT generalised")
            for entry in survey.entries]
    rows.append(("total functions", "6", survey.count))
    emit("E9a: the six levity-generalised functions", rows)
    assert survey.count == 6 and survey.all_verified


def test_report_class_survey():
    survey = survey_classes()
    rows = survey.summary_rows()
    rows.append(("example generalisable",
                 "Num, Eq, Ord, ...",
                 ", ".join(sorted(v.name for v in survey.generalisable)[:8])
                 + ", ..."))
    rows.append(("example blocked",
                 "Functor, Monad, Read, ...",
                 ", ".join(sorted(v.name
                                  for v in survey.not_generalisable)[:8])
                 + ", ..."))
    emit("E9b: base/ghc-prim class survey", rows)
    assert survey.total == 76
    assert 0.25 <= survey.fraction <= 0.5


@pytest.mark.benchmark(group="e9-survey")
def test_bench_class_survey(benchmark):
    survey = benchmark(survey_classes)
    assert survey.total == 76


@pytest.mark.benchmark(group="e9-survey")
def test_bench_function_survey(benchmark):
    survey = benchmark(survey_functions)
    assert survey.all_verified
