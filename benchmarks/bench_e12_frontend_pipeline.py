"""E12: frontend pipeline throughput — parse → infer → levity → default.

The concrete-syntax frontend turns programs into data, so the reproduction
can finally be measured the way a batch service would run it: N textual
programs per call through :meth:`repro.driver.Session.check_many`.  This
benchmark generates a corpus of surface programs (unboxed loops, boxing /
unboxing helpers, levity-polymorphic signatures, unboxed tuples — the
paper's whole vocabulary) and measures the throughput of each pipeline
stage in programs/second:

* ``e12.lex``   — tokenisation only;
* ``e12.parse`` — lexing + parsing + elaboration into the surface AST;
* ``e12.check`` — the full batch pipeline (parse, infer, the Section 5.1
  levity post-pass, Rep defaulting, scheme rendering);
* ``e12.run``   — parse + infer + evaluate ``main`` on the cost-model
  machine, over a smaller sample.

Wall-clock numbers land in ``BENCH_perf.json`` under ``e12.*`` together
with ``programs_per_sec`` counters.  Correctness is asserted always; the
(deliberately loose) throughput floor is skipped under
``BENCH_REPORT_ONLY`` like every other wall-clock gate.
"""

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.driver import Session
from repro.frontend import parse_module
from repro.frontend.lexer import tokenize

CORPUS_SIZE = 150
RUN_SAMPLE = 12

#: Very loose local floor: the seed hand-built ASTs because no textual
#: pipeline existed at all, so any sustained throughput is new capability;
#: the floor only trips pathological regressions (e.g. quadratic lexing).
CHECK_FLOOR_PROGRAMS_PER_SEC = 30.0


def make_corpus(count=CORPUS_SIZE):
    """``count`` distinct programs covering the paper's vocabulary."""
    sources = []
    for i in range(count):
        step = i % 5 + 1
        limit = (i % 17 + 1) * 3
        sources.append((f"gen_{i}.lev", f"""\
-- generated program {i}
myError{i} :: forall (r :: Rep) (a :: TYPE r). String -> a
myError{i} s = error s

add{i} :: Int# -> Int# -> Int#
add{i} x y = x +# y

unbox{i} :: Int -> Int#
unbox{i} b = case b of {{ I# x -> x }}

loop{i} :: Int# -> Int# -> Int#
loop{i} acc n = case n <=# 0# of {{ 1# -> acc; _ -> loop{i} (add{i} acc n) (n -# {step}#) }}

pair{i} :: Int# -> (# Int#, Int# #)
pair{i} n = (# n, n *# n #)

main :: Int#
main = loop{i} (unbox{i} $ I# {i % 9}#) {limit}#
"""))
    return sources


def _expected_main(i, count=CORPUS_SIZE):
    step = i % 5 + 1
    limit = (i % 17 + 1) * 3
    acc = i % 9
    n = limit
    while n > 0:
        acc += n
        n -= step
    return acc


def _lex_corpus(corpus):
    total = 0
    for filename, source in corpus:
        total += len(tokenize(source, filename))
    return total


def _parse_corpus(corpus):
    modules = [parse_module(source, filename) for filename, source in corpus]
    assert all(len(parsed.module.decls) == 12 for parsed in modules)
    return modules


def _check_corpus(corpus):
    results = Session().check_many(corpus)
    bad = [r.filename for r in results if not r.ok]
    assert not bad, f"corpus programs failed to check: {bad[:3]}"
    return results


def _run_sample(corpus, sample=RUN_SAMPLE):
    session = Session()
    values = []
    for index in range(0, len(corpus), max(1, len(corpus) // sample)):
        filename, source = corpus[index]
        result = session.run(source, filename)
        assert result.ok, result.check.pretty()
        values.append((index, result.value))
    return values


def test_report_frontend_pipeline_throughput():
    corpus = make_corpus()

    token_count = time_op("e12.lex", _lex_corpus, corpus,
                          repeats=3, meta={"programs": CORPUS_SIZE})
    time_op("e12.parse", _parse_corpus, corpus,
            repeats=3, meta={"programs": CORPUS_SIZE})
    results = time_op("e12.check", _check_corpus, corpus,
                      repeats=3, meta={"programs": CORPUS_SIZE})
    sample_values = time_op("e12.run", _run_sample, corpus,
                            repeats=2, meta={"programs": RUN_SAMPLE})

    # Cross-check a handful of evaluated results against Python arithmetic.
    for index, value in sample_values:
        assert value == f"{_expected_main(index)}#"
    # Every binding in every program got a scheme.
    assert all(len(r.bindings) == 6 for r in results)

    import benchreport
    timings = benchreport._TIMINGS
    rows = []
    throughput = {}
    for stage in ("lex", "parse", "check"):
        seconds = timings[f"e12.{stage}"]["seconds"]
        programs_per_sec = CORPUS_SIZE / seconds
        throughput[stage] = programs_per_sec
        record_counter(f"e12.{stage}.programs_per_sec",
                       round(programs_per_sec, 1))
        rows.append((f"{stage} ({CORPUS_SIZE} programs)",
                     "new capability (no textual frontend in seed)",
                     f"{seconds * 1000:.1f}ms "
                     f"({programs_per_sec:.0f} programs/s)"))
    record_counter("e12.corpus.programs", CORPUS_SIZE)
    record_counter("e12.corpus.tokens", token_count)
    run_seconds = timings["e12.run"]["seconds"]
    rows.append((f"run sample ({len(sample_values)} programs)",
                 "parse+infer+evaluate end-to-end",
                 f"{run_seconds * 1000:.1f}ms"))
    emit("E12: frontend pipeline throughput (parse -> infer -> check -> run)",
         rows)

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert throughput["check"] >= CHECK_FLOOR_PROGRAMS_PER_SEC, (
        f"full-pipeline throughput {throughput['check']:.1f} programs/s "
        f"fell below the {CHECK_FLOOR_PROGRAMS_PER_SEC} floor")


def test_batch_checking_reuses_one_session():
    """check_many over one Session must match per-program fresh Sessions."""
    corpus = make_corpus(10)
    batched = Session().check_many(corpus)
    individual = [Session().check(source, filename)
                  for filename, source in corpus]
    for one, other in zip(batched, individual):
        assert one.ok and other.ok
        assert [b.rendered for b in one.bindings] == \
            [b.rendered for b in other.bindings]


def test_corpus_covers_levity_polymorphism():
    """The generated corpus really exercises the paper's vocabulary."""
    corpus = make_corpus(3)
    results = Session().check_many(corpus)
    for result in results:
        my_error = [b for b in result.bindings
                    if b.name.startswith("myError")][0]
        assert my_error.scheme.is_levity_polymorphic()
        pair = [b for b in result.bindings if b.name.startswith("pair")][0]
        assert "(#" in pair.rendered
