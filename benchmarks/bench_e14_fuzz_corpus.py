"""E14: fuzz-corpus throughput — generation, sharded checking, differential.

The corpus-fuzzing subsystem (``repro.fuzz``, docs/FUZZ.md) turns the
150-program templated corpus of E12 into open-ended random program
synthesis.  This benchmark measures the full loop at the 1000+-program
scale the ISSUE demands:

* ``e14.generate``     — type-directed generation of the corpus (programs
  are built together with their reference semantics);
* ``e14.check_jobs1`` / ``e14.check_jobs2`` — the corpus through the
  sharded batch checker (``Session.check_many(jobs=N)``);
* ``e14.cache_cold`` / ``e14.cache_warm`` — the corpus through the
  incremental result cache (a warm re-run must be answered entirely from
  the cache);
* ``e14.differential`` — a sample through the *full* differential harness
  (type-check + intended types, round-trip, evaluator, reference values,
  M-machine cross-check).

Correctness is asserted always: every program checks, the differential
sample reports zero failures, and the warm cache serves every hit.  The
loose wall-clock floors are skipped under ``BENCH_REPORT_ONLY``.
"""

import os

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.driver import Session
from repro.driver.batch import ResultCache
from repro.fuzz import DifferentialHarness, GenOptions, generate_corpus

CORPUS_SEED = 14
CORPUS_SIZE = 1000
DIFFERENTIAL_SAMPLE = 150

#: Loose local floors (new capability — the floors only catch pathology).
GENERATE_FLOOR_PROGRAMS_PER_SEC = 50.0
CHECK_FLOOR_PROGRAMS_PER_SEC = 20.0
WARM_CACHE_FRACTION = 0.15


def _generate():
    corpus = generate_corpus(CORPUS_SEED, CORPUS_SIZE,
                             GenOptions(max_bindings=3))
    assert len(corpus) == CORPUS_SIZE
    return corpus


def _check(sources, jobs=1, cache=None):
    results = Session().check_many(sources, jobs=jobs, cache=cache)
    bad = [result.filename for result in results if not result.ok]
    assert not bad, f"fuzz corpus programs failed to check: {bad[:3]}"
    return results


def test_report_fuzz_corpus_throughput(tmp_path):
    corpus = time_op("e14.generate", _generate, repeats=2,
                     meta={"programs": CORPUS_SIZE})
    sources = [(program.filename, program.source) for program in corpus]

    time_op("e14.check_jobs1", _check, sources, repeats=1,
            meta={"programs": CORPUS_SIZE, "jobs": 1})
    time_op("e14.check_jobs2", lambda: _check(sources, jobs=2), repeats=1,
            meta={"programs": CORPUS_SIZE, "jobs": 2})

    cache_path = str(tmp_path / "e14-cache.json")
    time_op("e14.cache_cold", lambda: _check(sources, cache=cache_path),
            repeats=1, meta={"programs": CORPUS_SIZE})
    warm_cache = ResultCache(cache_path)
    time_op("e14.cache_warm", lambda: _check(sources, cache=warm_cache),
            repeats=1, meta={"programs": CORPUS_SIZE})
    # Hierarchical cache (schema v2): unchanged programs are answered
    # whole from their file-level entries.
    assert warm_cache.file_hits == CORPUS_SIZE and warm_cache.misses == 0, \
        "warm run was not answered entirely from the cache"
    # Store-level shape (schema v4): a warm no-op writes nothing back.
    assert warm_cache.shards_written == 0
    record_counter("e14.store.warm_shards_read", warm_cache.shards_read)
    record_counter("e14.store.warm_shards_written",
                   warm_cache.shards_written)

    sample = corpus[:DIFFERENTIAL_SAMPLE]

    def _differential():
        report = DifferentialHarness().run_corpus(sample)
        assert report.ok, report.pretty(max_failures=3)
        return report

    report = time_op("e14.differential", _differential, repeats=1,
                     meta={"programs": DIFFERENTIAL_SAMPLE})

    import benchreport
    timings = {key: benchreport._TIMINGS[f"e14.{key}"]["seconds"]
               for key in ("generate", "check_jobs1", "check_jobs2",
                           "cache_cold", "cache_warm", "differential")}
    generate_rate = CORPUS_SIZE / timings["generate"]
    check_rate = CORPUS_SIZE / timings["check_jobs1"]
    warm_fraction = timings["cache_warm"] / timings["cache_cold"]
    differential_rate = DIFFERENTIAL_SAMPLE / timings["differential"]
    record_counter("e14.corpus.programs", CORPUS_SIZE)
    record_counter("e14.corpus.bytes",
                   sum(len(program.source) for program in corpus))
    record_counter("e14.corpus.fragment_programs",
                   sum(1 for program in corpus if program.fragment))
    record_counter("e14.generate.programs_per_sec", round(generate_rate, 1))
    record_counter("e14.check_jobs1.programs_per_sec", round(check_rate, 1))
    record_counter("e14.check_jobs2.programs_per_sec",
                   round(CORPUS_SIZE / timings["check_jobs2"], 1))
    record_counter("e14.speedup.jobs2_vs_jobs1",
                   round(timings["check_jobs1"] / timings["check_jobs2"], 2))
    record_counter("e14.cache.warm_fraction_of_cold", round(warm_fraction, 4))
    record_counter("e14.differential.programs_per_sec",
                   round(differential_rate, 1))
    record_counter("e14.differential.machine_engaged",
                   report.counters.get("machine_engaged", 0))
    record_counter("e14.differential.reference_checked",
                   report.counters.get("reference_checked", 0))
    record_counter("e14.cpu_count", os.cpu_count() or 1)

    emit("E14: fuzz corpus at scale (generate -> shard-check -> "
         "differential)", [
             (f"generate ({CORPUS_SIZE} programs)",
              "new capability (templated corpus in E12)",
              f"{timings['generate'] * 1000:.0f}ms "
              f"({generate_rate:.0f} programs/s)"),
             ("check jobs=1", "sharded batch checker",
              f"{timings['check_jobs1'] * 1000:.0f}ms "
              f"({check_rate:.0f} programs/s)"),
             ("check jobs=2",
              f"{timings['check_jobs1'] / timings['check_jobs2']:.2f}x "
              "vs jobs=1",
              f"{timings['check_jobs2'] * 1000:.0f}ms"),
             ("cache cold -> warm", f"warm {warm_fraction:.1%} of cold",
              f"{timings['cache_cold'] * 1000:.0f}ms -> "
              f"{timings['cache_warm'] * 1000:.0f}ms"),
             (f"differential sample ({DIFFERENTIAL_SAMPLE})",
              "evaluator vs reference vs M machine",
              f"{timings['differential'] * 1000:.0f}ms "
              f"({differential_rate:.0f} programs/s)"),
         ])

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert generate_rate >= GENERATE_FLOOR_PROGRAMS_PER_SEC, (
        f"corpus generation {generate_rate:.1f} programs/s fell below "
        f"{GENERATE_FLOOR_PROGRAMS_PER_SEC}")
    assert check_rate >= CHECK_FLOOR_PROGRAMS_PER_SEC, (
        f"corpus checking {check_rate:.1f} programs/s fell below "
        f"{CHECK_FLOOR_PROGRAMS_PER_SEC}")
    assert warm_fraction < WARM_CACHE_FRACTION, (
        f"warm-cache fuzz re-run took {warm_fraction:.1%} of the cold run")
