"""E19: whole-language machine validation — coverage, cross-check, discharge.

The whole-language extension (``fix`` + primops in L/M, docs/VALIDATION.md)
is about *coverage*: entries that previously skipped the M-machine
cross-check ("recursion is outside the fragment", "no primops in L") now
lower, compile and validate.  This benchmark records what that costs and
what it buys:

* ``e19.crosscheck``  — a mixed fixed-seed corpus through the differential
  harness with validation off: machine-engagement counters show how much
  of the corpus the machine oracle now covers;
* ``e19.discharge``   — an all-fragment corpus through the harness with
  per-program Simulation discharge on (capped ``align_steps``): the added
  cost of translation validation per program;
* ``e19.fix_memo``    — the compiled ``sumTo#`` loop on the M machine:
  the FIX rule ties the knot through a heap thunk, so ``fix_unrollings``
  must stay O(1) while ``branches``/``primops`` scale with the loop.

Correctness is asserted always (zero oracle failures, 100% engagement on
the all-fragment corpus, O(1) unrollings); the loose wall-clock floors
are skipped under ``BENCH_REPORT_ONLY``.
"""

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.fuzz import DifferentialHarness, GenOptions, generate_corpus
from repro.lang_m.machine import run as run_machine

SEED = 19
MIXED_SIZE = 150
FRAGMENT_SIZE = 100
ALIGN_STEPS = 12
LOOP_ITERATIONS = 200

#: Loose local floor — discharge is machine-bound, pathology only.
DISCHARGE_FLOOR_PROGRAMS_PER_SEC = 5.0


def _compiled_loop():
    from repro.compile import compile_expr
    from repro.driver.lower import lower_entry
    from repro.frontend import parse_module
    from repro.infer import infer_module

    source = (
        "sumTo# :: Int# -> Int# -> Int#\n"
        "sumTo# acc n = case n <=# 0# of "
        "{ 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n"
        "main :: Int#\n"
        f"main = sumTo# 0# {LOOP_ITERATIONS}#\n")
    parsed = parse_module(source)
    schemes = infer_module(parsed.module).schemes
    term = lower_entry(parsed.module, schemes, "main")
    return compile_expr(term)


def test_report_machine_validation(tmp_path):
    mixed = generate_corpus(SEED, MIXED_SIZE)
    fragment = generate_corpus(SEED + 1, FRAGMENT_SIZE,
                               GenOptions(fragment_bias=1.0))

    def _crosscheck():
        report = DifferentialHarness(validate=False).run_corpus(mixed)
        assert report.ok, report.pretty(max_failures=3)
        return report

    def _discharge():
        harness = DifferentialHarness(align_steps=ALIGN_STEPS)
        report = harness.run_corpus(fragment)
        assert report.ok, report.pretty(max_failures=3)
        assert report.counters["machine_engaged"] == FRAGMENT_SIZE, \
            "an all-fragment corpus must engage the machine everywhere"
        return report

    crosscheck = time_op("e19.crosscheck", _crosscheck, repeats=1,
                         meta={"programs": MIXED_SIZE})
    discharge = time_op("e19.discharge", _discharge, repeats=1,
                        meta={"programs": FRAGMENT_SIZE,
                              "align_steps": ALIGN_STEPS})

    compiled = _compiled_loop()
    outcome = time_op("e19.fix_memo", lambda: run_machine(compiled.code),
                      repeats=3, meta={"iterations": LOOP_ITERATIONS})
    total = LOOP_ITERATIONS * (LOOP_ITERATIONS + 1) // 2
    assert outcome.unwrap().value == total
    assert outcome.costs.fix_unrollings <= 3, (
        f"{outcome.costs.fix_unrollings} fix unrollings for "
        f"{LOOP_ITERATIONS} iterations — the heap knot is not memoised")
    assert outcome.costs.branches >= LOOP_ITERATIONS

    import benchreport
    timings = {key: benchreport._TIMINGS[f"e19.{key}"]["seconds"]
               for key in ("crosscheck", "discharge", "fix_memo")}
    engaged = crosscheck.counters.get("machine_engaged", 0)
    skipped = crosscheck.counters.get("machine_skipped_out_of_fragment", 0)
    obligations = discharge.counters.get("obligations_discharged", 0)
    discharge_rate = FRAGMENT_SIZE / timings["discharge"]

    record_counter("e19.crosscheck.machine_engaged", engaged)
    record_counter("e19.crosscheck.machine_skipped_out_of_fragment", skipped)
    record_counter("e19.crosscheck.coverage",
                   round(engaged / MIXED_SIZE, 3))
    record_counter("e19.discharge.validated",
                   discharge.counters.get("validated", 0))
    record_counter("e19.discharge.obligations", obligations)
    record_counter("e19.discharge.programs_per_sec",
                   round(discharge_rate, 1))
    record_counter("e19.fix_memo.unrollings", outcome.costs.fix_unrollings)
    record_counter("e19.fix_memo.machine_steps", outcome.costs.steps)
    record_counter("e19.fix_memo.primops", outcome.costs.primops)

    emit("E19: whole-language machine validation (fix + primops + "
         "per-program discharge)", [
             (f"cross-check coverage ({MIXED_SIZE} mixed programs)",
              "recursion/primops skipped before the whole-language L",
              f"{engaged}/{MIXED_SIZE} engaged, {skipped} out-of-fragment "
              f"skips ({timings['crosscheck'] * 1000:.0f}ms)"),
             (f"Simulation discharge ({FRAGMENT_SIZE} fragment programs, "
              f"align={ALIGN_STEPS})",
              "new capability (docs/VALIDATION.md)",
              f"{obligations} obligations in "
              f"{timings['discharge'] * 1000:.0f}ms "
              f"({discharge_rate:.0f} programs/s)"),
             (f"fix memoisation ({LOOP_ITERATIONS} loop iterations)",
              "FIX + EVAL/FCE heap sharing",
              f"{outcome.costs.fix_unrollings} unrollings, "
              f"{outcome.costs.steps} machine steps "
              f"({timings['fix_memo'] * 1000:.1f}ms)"),
         ])

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert discharge_rate >= DISCHARGE_FLOOR_PROGRAMS_PER_SEC, (
        f"Simulation discharge {discharge_rate:.1f} programs/s fell below "
        f"{DISCHARGE_FLOOR_PROGRAMS_PER_SEC}")
