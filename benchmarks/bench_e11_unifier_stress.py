"""E11: unifier stress — union-find solver vs the seed's dictionary chaser.

The paper's engineering claim (Section 5.2) is that representation
unification makes levity polymorphism *cheap* inside a real inference
engine.  The seed reproduction's solver undermined that claim: it resolved
variables by chasing ``{name: term}`` dictionaries and re-zonked whole type
trees on every ``unify_types`` call, which is quadratic on solution chains.
This benchmark measures the production union-find solver
(:mod:`repro.infer.unify`) against the preserved seed implementation
(:mod:`repro.infer.legacy_unify`) on three adversarial workloads:

* **deep solution chains** — ``α0 ~ α1 ~ … ~ αn`` then ``α0 ~ Int``, then
  zonk every variable: the classic quadratic case (each chain link also
  drags a ``ρ`` rep-var chain behind it through the kinds);
* **wide unboxed-tuple reps** — ``TupleRep`` with hundreds of rep-var
  components unified against a concrete tuple, twice (the second pass is
  all lookups);
* **many-binding modules** — a module of chained function bindings, run
  through the full inference engine with each solver.

Wall-clock numbers land in ``BENCH_perf.json`` (keys ``e11.*``); the
deep-chain workload must show a >= 3x speedup (skipped when
``BENCH_REPORT_ONLY`` is set — shared CI runners are too noisy to gate on).

A separate test drops Python's recursion limit to the *default* 1000 frames
and solves a 5000-deep chain, proving the iterative worklist loops no
longer lean on the ``sys.setrecursionlimit`` crutch the seed's
``benchmarks/conftest.py`` needed.
"""

import sys

import pytest

from benchreport import emit, record_counter, record_timing, report_only, time_op
from repro.core.rep import INT_REP, LIFTED, DOUBLE_REP, TupleRep
from repro.infer import infer_module
from repro.infer.legacy_unify import LegacyUnifierState
from repro.infer.unify import UnifierState
from repro.surface.ast import EVar, FunBind, Module, apply
from repro.surface.types import INT_TY, UnboxedTupleTy, INT_HASH_TY, DOUBLE_HASH_TY

DEEP_CHAIN_N = 1200
WIDE_TUPLE_N = 400
MODULE_BINDINGS = 120

SPEEDUP_FLOOR = 3.0


# ---------------------------------------------------------------------------
# Workloads (parametrised by the solver class)
# ---------------------------------------------------------------------------


def _deep_chain(state_cls, n=DEEP_CHAIN_N):
    """Chain n type uvars, solve the head, then zonk every variable."""
    state = state_cls()
    uvars = [state.fresh_type_uvar() for _ in range(n)]
    for left, right in zip(uvars, uvars[1:]):
        state.unify_types(left, right)
    state.unify_types(uvars[0], INT_TY)
    for var in uvars:
        assert state.zonk_type(var) == INT_TY
    return state


def _wide_tuples(state_cls, n=WIDE_TUPLE_N):
    """Wide-representation stress: one wide solve, then many binds against
    the same wide term.

    Phase 1 unifies a TupleRep of ``n`` rep variables against a concrete
    tuple (twice — the second pass must be pure lookups).  Phase 2 binds
    ``n`` fresh type variables, one ``unify_types`` call each, against the
    *same* ``n//4``-wide unboxed tuple type: the seed solver re-zonks and
    re-kinds the whole tuple on every call (O(n²) overall), while the
    union-find solver answers from the occurs-check prune and the memoised
    kind table.
    """
    state = state_cls()
    rep_uvars = [state.fresh_rep_uvar() for _ in range(n)]
    concrete = TupleRep([INT_REP, LIFTED, DOUBLE_REP][i % 3]
                        for i in range(n))
    state.unify_reps(TupleRep(rep_uvars), concrete)
    # Second pass: everything already solved, must be pure lookups.
    state.unify_reps(TupleRep(rep_uvars), concrete)
    assert state.zonk_rep(TupleRep(rep_uvars)) == concrete
    # Phase 2: many independent binds against one wide unboxed tuple type.
    wide_ty = UnboxedTupleTy([INT_HASH_TY, DOUBLE_HASH_TY][i % 2]
                             for i in range(n // 4))
    for _ in range(n):
        alpha = state.fresh_type_uvar()
        state.unify_types(alpha, wide_ty)
        assert state.zonk_type(alpha) == wide_ty
    return state


def _chained_module(n=MODULE_BINDINGS):
    """``f0 x = x;  f_i x = f_{i-1} x`` — n bindings, each inferred in turn."""
    decls = [FunBind("f0", ["x"], EVar("x"))]
    for i in range(1, n):
        decls.append(FunBind(f"f{i}", ["x"],
                             apply(EVar(f"f{i - 1}"), EVar("x"))))
    return Module("Stress", decls)


def _infer_stress_module(unifier_cls):
    """Run full inference over the chained module with a chosen solver."""
    import repro.infer.infer as infer_mod

    module = _chained_module()
    original = infer_mod.UnifierState
    infer_mod.UnifierState = unifier_cls
    try:
        result = infer_module(module)
    finally:
        infer_mod.UnifierState = original
    assert len(result.schemes) == MODULE_BINDINGS
    return result


# ---------------------------------------------------------------------------
# The report + the >=3x acceptance gate
# ---------------------------------------------------------------------------


def test_report_unifier_stress_speedup():
    time_op("e11.deep_chain.legacy", _deep_chain,
            LegacyUnifierState, DEEP_CHAIN_N,
            repeats=3, meta={"n": DEEP_CHAIN_N})
    current = time_op("e11.deep_chain.current", _deep_chain,
                      UnifierState, DEEP_CHAIN_N,
                      repeats=3, meta={"n": DEEP_CHAIN_N})
    record_counter("e11.deep_chain.solver_ops", current.stats.as_dict())

    time_op("e11.wide_tuple.legacy", _wide_tuples,
            LegacyUnifierState, WIDE_TUPLE_N,
            repeats=3, meta={"n": WIDE_TUPLE_N})
    wide_state = time_op("e11.wide_tuple.current", _wide_tuples,
                         UnifierState, WIDE_TUPLE_N,
                         repeats=3, meta={"n": WIDE_TUPLE_N})
    record_counter("e11.wide_tuple.solver_ops", wide_state.stats.as_dict())

    time_op("e11.module.legacy", _infer_stress_module,
            LegacyUnifierState, repeats=2,
            meta={"bindings": MODULE_BINDINGS})
    time_op("e11.module.current", _infer_stress_module,
            UnifierState, repeats=2,
            meta={"bindings": MODULE_BINDINGS})

    import benchreport
    timings = benchreport._TIMINGS
    rows = []
    speedups = {}
    for stem in ("e11.deep_chain", "e11.wide_tuple", "e11.module"):
        legacy_s = timings[f"{stem}.legacy"]["seconds"]
        current_s = timings[f"{stem}.current"]["seconds"]
        speedup = legacy_s / current_s
        speedups[stem] = speedup
        record_counter(f"{stem}.speedup", round(speedup, 2))
        rows.append((stem, "faster (union-find)",
                     f"{legacy_s * 1000:.1f}ms -> {current_s * 1000:.1f}ms "
                     f"({speedup:.1f}x)"))
    emit("E11: unifier stress, union-find vs seed dictionary chaser", rows)

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert speedups["e11.deep_chain"] >= SPEEDUP_FLOOR, (
        f"deep-chain speedup {speedups['e11.deep_chain']:.2f}x fell below "
        f"the {SPEEDUP_FLOOR}x acceptance floor")
    # Softer regression tripwires for the other workloads (typically ~20x
    # and ~4x respectively; generous slack for noisy machines).
    assert speedups["e11.wide_tuple"] >= 2.0
    assert speedups["e11.module"] >= 1.5


def test_deep_chain_runs_under_default_recursion_limit():
    """The iterative solver must not consume stack proportional to the chain.

    The seed's conftest crutch was ``sys.setrecursionlimit(200_000)``; the
    production solver solves a 5000-deep chain within Python's *default*
    1000-frame limit.
    """
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        state = _deep_chain(UnifierState, n=5000)
    finally:
        sys.setrecursionlimit(previous)
    stats = state.stats
    assert stats.type_bindings == 5000
    record_counter("e11.recursion_limit_probe",
                   {"chain_depth": 5000, "recursion_limit": 1000})


def test_wide_tuple_second_pass_is_lookups_only():
    """Re-unifying an already-solved wide tuple must not re-bind anything."""
    state = UnifierState()
    rep_uvars = [state.fresh_rep_uvar() for _ in range(64)]
    concrete = TupleRep([INT_REP] * 64)
    state.unify_reps(TupleRep(rep_uvars), concrete)
    bindings_after_first = state.stats.rep_bindings
    state.unify_reps(TupleRep(rep_uvars), concrete)
    assert state.stats.rep_bindings == bindings_after_first


def test_module_inference_agrees_across_solvers():
    """Both solvers must infer identical schemes for the stress module."""
    current = _infer_stress_module(UnifierState)
    legacy = _infer_stress_module(LegacyUnifierState)
    for name, scheme in current.schemes.items():
        assert scheme.pretty() == legacy.schemes[name].pretty()
