"""E16: closure-compiled evaluator vs the tree-walker, + codegen cache.

The ISSUE-6 tentpole gate.  Two measurements land in ``BENCH_perf.json``:

* ``e16.interpreted_*`` / ``e16.compiled_*`` — the Section 2.1 ``sumTo``
  loops (unboxed and boxed) run through the tree-walking evaluator and
  through the closure-compilation backend
  (:mod:`repro.runtime.compiler`).  The compiled unboxed loop must be at
  least :data:`COMPILED_SPEEDUP_FLOOR` times faster — that is the "kinds
  are calling conventions, so bake them in" payoff: the generated code is
  a flat Python loop over raw machine integers (trampolined tail calls,
  direct primop references, no per-step dispatch).
* ``e16.codegen_cold`` / ``e16.codegen_warm`` — ``Session.run`` with
  ``compiled=True`` against a cold vs warm per-unit codegen cache.  The
  warm run must link cached sources only (``codegen_compiled == 0``);
  the wall-clock ratio is recorded but not gated (codegen is cheap for
  small modules — the zero-codegen counter is the meaningful assertion).

Correctness (identical results between the two evaluators, exact loop
sums) is asserted always; wall-clock gates respect ``BENCH_REPORT_ONLY``.
"""

import sys

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.driver import DriverOptions, Session
from repro.driver.batch import ResultCache
from repro.runtime.evaluator import Evaluator, Program
from repro.runtime.programs import (
    sum_to_boxed_module,
    sum_to_unboxed_module,
)
from repro.runtime.values import UnboxedInt

#: Loop sizes — large enough to dominate the per-call setup, small enough
#: that the *interpreted* baseline neither takes seconds nor exhausts the
#: recursion headroom (the tree-walker recurses a few Python frames per
#: iteration; the compiled loop is flat).
N_UNBOXED = 4000
N_BOXED = 2000

#: The tentpole gate: compiled-vs-interpreted on the unboxed loop.
COMPILED_SPEEDUP_FLOOR = 10.0

#: Bindings in the synthetic module for the codegen-cache timing.
CODEGEN_BINDINGS = 30


def _run_loop(module, name, n, compiled):
    program = Program.from_module(module)
    evaluator = Evaluator(program, compiled=compiled)
    result = evaluator.run(name, UnboxedInt(0) if name == "sumTo#"
                           else evaluator.boxed_int(0),
                           UnboxedInt(n) if name == "sumTo#"
                           else evaluator.boxed_int(n))
    return evaluator.int_result(result)


def _codegen_source():
    lines = []
    for index in range(CODEGEN_BINDINGS):
        feed = f"f{index - 1} (x +# {index}#)" if index else "x +# 1#"
        lines.append(f"f{index} :: Int# -> Int#")
        lines.append(f"f{index} x = {feed}")
    lines.append("main :: Int#")
    lines.append(f"main = f{CODEGEN_BINDINGS - 1} 0#")
    return "\n".join(lines) + "\n"


def test_report_compiled_eval_throughput(tmp_path):
    # The tree-walker makes the loop's tail calls as Python recursion.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 50 * N_UNBOXED))

    expected_unboxed = N_UNBOXED * (N_UNBOXED + 1) // 2
    expected_boxed = N_BOXED * (N_BOXED + 1) // 2

    timings = {}
    runs = [
        ("interpreted_unboxed", sum_to_unboxed_module(), "sumTo#",
         N_UNBOXED, False, expected_unboxed),
        ("compiled_unboxed", sum_to_unboxed_module(), "sumTo#",
         N_UNBOXED, True, expected_unboxed),
        ("interpreted_boxed", sum_to_boxed_module(), "sumTo",
         N_BOXED, False, expected_boxed),
        ("compiled_boxed", sum_to_boxed_module(), "sumTo",
         N_BOXED, True, expected_boxed),
    ]
    for label, module, name, n, compiled, expected in runs:
        result = time_op(f"e16.{label}", _run_loop, module, name, n,
                         compiled, repeats=3, meta={"n": n})
        assert result == expected, \
            f"{label} computed {result}, expected {expected}"

    import benchreport
    for label, *_ in runs:
        timings[label] = benchreport._TIMINGS[f"e16.{label}"]["seconds"]
    speedup_unboxed = timings["interpreted_unboxed"] \
        / timings["compiled_unboxed"]
    speedup_boxed = timings["interpreted_boxed"] / timings["compiled_boxed"]
    record_counter("e16.speedup.unboxed_compiled_vs_interpreted",
                   round(speedup_unboxed, 2))
    record_counter("e16.speedup.boxed_compiled_vs_interpreted",
                   round(speedup_boxed, 2))

    # -- per-unit codegen cache: cold run, then a warm re-run ----------------
    source = _codegen_source()
    cache_path = str(tmp_path / "e16-codegen.json")
    options = DriverOptions(compiled=True)

    cold = time_op(
        "e16.codegen_cold",
        lambda: Session(options).run(source, "codegen.lev",
                                     cache=cache_path),
        repeats=1, meta={"bindings": CODEGEN_BINDINGS + 1})
    warm_cache = ResultCache(cache_path)
    warm = time_op(
        "e16.codegen_warm",
        lambda: Session(options).run(source, "codegen.lev",
                                     cache=warm_cache),
        repeats=1, meta={"bindings": CODEGEN_BINDINGS + 1})
    assert cold.ok and warm.ok and cold.value == warm.value
    assert cold.codegen_compiled == CODEGEN_BINDINGS + 1
    assert warm.codegen_compiled == 0, \
        "warm run re-generated code the cache should have served"
    assert warm.codegen_cached == CODEGEN_BINDINGS + 1
    assert warm_cache.codegen_hits == CODEGEN_BINDINGS + 1

    import benchreport
    cold_seconds = benchreport._TIMINGS["e16.codegen_cold"]["seconds"]
    warm_seconds = benchreport._TIMINGS["e16.codegen_warm"]["seconds"]
    record_counter("e16.codegen.warm_fraction_of_cold",
                   round(warm_seconds / cold_seconds, 4))

    rows = [
        (f"unboxed interpreted (n={N_UNBOXED})", "> 2s in the paper",
         f"{timings['interpreted_unboxed'] * 1000:.1f}ms"),
        ("unboxed compiled", f"{speedup_unboxed:.1f}x faster",
         f"{timings['compiled_unboxed'] * 1000:.1f}ms"),
        (f"boxed interpreted (n={N_BOXED})", "baseline",
         f"{timings['interpreted_boxed'] * 1000:.1f}ms"),
        ("boxed compiled", f"{speedup_boxed:.1f}x faster",
         f"{timings['compiled_boxed'] * 1000:.1f}ms"),
        ("codegen cold", f"{CODEGEN_BINDINGS + 1} fn(s) lowered",
         f"{cold_seconds * 1000:.1f}ms"),
        ("codegen warm", "0 lowered, all cached",
         f"{warm_seconds * 1000:.1f}ms"),
    ]
    emit("E16: closure-compiled evaluator + per-unit codegen cache", rows)

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert speedup_unboxed >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled unboxed loop only {speedup_unboxed:.1f}x faster than "
        f"the tree-walker (floor: {COMPILED_SPEEDUP_FLOOR:.0f}x)")
    assert speedup_boxed > 1.0, (
        f"compiled boxed loop slower than the tree-walker "
        f"({speedup_boxed:.2f}x)")
