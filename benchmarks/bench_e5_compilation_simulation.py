"""E5 (Figure 7, Section 6.3-6.4): Compilation totality and the Simulation theorem.

Paper claim: every well-typed L program compiles to M (Compilation theorem),
and compilation preserves the operational semantics step by step up to
joinability (Simulation theorem — including the substitution/compilation
lemma the paper leaves as an open problem, which we test rather than prove).
"""

import pytest

from benchreport import emit
from repro.compile import compile_expr
from repro.metatheory import check_compilation, check_simulation, generate_corpus

CORPUS = generate_corpus(60, seed=21, depth=4)


def test_report_compilation_and_simulation():
    compilation_failures = simulation_failures = 0
    for _, program in CORPUS:
        if not check_compilation(program).holds:
            compilation_failures += 1
        if not check_simulation(program, probe_depth=1).holds:
            simulation_failures += 1
    emit("E5: Compilation + Simulation theorems", [
        ("well-typed programs", "-", len(CORPUS)),
        ("compilation failures", "0 (theorem)", compilation_failures),
        ("simulation failures", "0 (theorem + open lemma)",
         simulation_failures),
    ])
    assert compilation_failures == 0
    assert simulation_failures == 0


def test_report_erasure_statistics():
    erased = sum(compile_expr(p).erased_type_nodes for _, p in CORPUS)
    lazy = sum(compile_expr(p).lazy_lets for _, p in CORPUS)
    strict = sum(compile_expr(p).strict_lets for _, p in CORPUS)
    emit("E5: type erasure and ANF statistics", [
        ("type/rep nodes erased", "all", erased),
        ("lazy lets introduced (TYPE P args)", "-", lazy),
        ("strict lets introduced (TYPE I args)", "-", strict),
    ])
    assert strict > 0 and lazy > 0


@pytest.mark.benchmark(group="e5-compilation")
def test_bench_compilation(benchmark):
    programs = [p for _, p in CORPUS]

    def run():
        return [compile_expr(p).lazy_lets for p in programs]
    benchmark(run)


@pytest.mark.benchmark(group="e5-simulation")
def test_bench_simulation_check(benchmark):
    programs = [p for _, p in CORPUS[:10]]

    def run():
        return [check_simulation(p, probe_depth=1).holds for p in programs]
    result = benchmark(run)
    assert all(result)
