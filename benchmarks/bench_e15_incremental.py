"""E15: binding-level incremental re-checking on a ~100-binding module.

The tentpole measurement of the binding-granularity refactor: one module
with ``NUM_BINDINGS`` top-level bindings arranged as layered clusters
(each binding depends on one or two earlier ones, plus a recursive worker
per cluster) is checked cold into a unit cache; then a **single binding's
body** is edited and the module is re-checked warm.

Recorded into ``BENCH_perf.json``:

* ``e15.full_check``        — whole-module check, no cache (the old
  module-granularity cost of *any* edit);
* ``e15.cold_cache``        — cold run that also populates the cache;
* ``e15.warm_noop``         — warm run with nothing edited (pure
  hit-path overhead: parse + plan + key derivation);
* ``e15.single_edit``       — warm run after editing one leaf binding's
  body (re-checks exactly one unit);
* ``e15.edit_with_dependents`` — warm run after changing one mid-corpus
  binding's *scheme* (re-checks its SCC + transitive dependents only);
* counters: unit counts, hit/miss counts per scenario, and the headline
  ``e15.speedup.single_edit_vs_full`` ratio (gated at ≥ 5× unless
  ``BENCH_REPORT_ONLY``).

Correctness is asserted always: a warm incremental result must be
**byte-identical** (rendered schemes + diagnostics, spans included) to a
cold from-scratch check of the same source, and the miss counts must
cover exactly the edited binding's SCC and its transitive dependents.
"""

import os

import pytest

from benchreport import emit, record_counter, report_only, time_op
from repro.driver import DriverOptions, ResultCache, Session, build_plan
from repro.driver.batch import (
    CheckStats,
    payload_bytes,
    result_to_payload,
)
from repro.frontend import parse_module
from repro.telemetry import REGISTRY

NUM_BINDINGS = 100
CLUSTER = 10          # bindings per layered cluster
SPEEDUP_FLOOR = 5.0   # single-edit warm re-check vs whole-module check

FILENAME = "corpus100.lev"


def make_module(num=NUM_BINDINGS):
    """One module of ``num`` bindings in layered dependency clusters.

    Binding ``b{i}`` depends on ``b{i-1}`` (same cluster) and on the
    previous cluster's head; each cluster head is a small recursive
    worker, so the graph has both chains and self-loops.  Bodies are a
    few lines each — representative of real modules, where inference
    work per binding dominates the one-line toy case.
    """
    lines = []
    for i in range(num):
        if i % CLUSTER == 0:
            lines.append(f"b{i} :: Int# -> Int#")
            lines.append(
                f"b{i} n = case n <=# 0# of "
                f"{{ 1# -> {i}#; _ -> b{i} (n -# 1#) }}")
        elif i % CLUSTER == 1:
            lines.append(f"b{i} = b{i - 1} {i}#")
        else:
            head = i - i % CLUSTER
            lines.append(f"b{i} =")
            lines.append(f"  let scaled = b{i - 1} +# b{head} {i}# in")
            lines.append(f"  case scaled ==# 0# of")
            lines.append(f"    {{ 1# -> b{head} (scaled +# 1#)")
            lines.append(f"    ; _ -> (\\k -> k +# scaled) (b{head} 2#) }}")
        lines.append("")
    return "\n".join(lines)


def _dependents_of(source, name):
    """The names transitively depending on ``name`` (via the real plan)."""
    plan = build_plan(parse_module(source, FILENAME))
    dependents = set()
    changed = True
    dirty = {name}
    while changed:
        changed = False
        for unit in plan.units:
            if set(unit.names) & dirty:
                continue
            if set(unit.deps) & dirty:
                dirty.update(unit.names)
                dependents.update(unit.names)
                changed = True
    return dependents


def test_report_incremental_recheck(tmp_path):
    source = make_module()
    session = Session()

    # -- the old world: any edit costs a whole-module check ------------------
    full = time_op("e15.full_check",
                   lambda: session.check_many([(FILENAME, source)]),
                   repeats=3, meta={"bindings": NUM_BINDINGS})
    assert full[0].ok, [d.pretty() for d in full[0].diagnostics][:3]
    assert len(full[0].bindings) == NUM_BINDINGS

    # -- cold cache population ----------------------------------------------
    cache_path = str(tmp_path / "e15-cache.json")
    cold_stats = CheckStats()
    cold = time_op(
        "e15.cold_cache",
        lambda: session.check_many([(FILENAME, source)], cache=cache_path,
                                   stats=cold_stats),
        repeats=1, meta={"bindings": NUM_BINDINGS})
    record_counter("e15.units", cold_stats.units)
    assert cold_stats.checked == cold_stats.units

    def throwaway_cache():
        """A warm cache that never persists: every run starts from the
        pristine cold state (persisting would make repeat timings all-hit
        and misstate the miss counts)."""
        warm = ResultCache(cache_path)
        warm.path = None
        return warm

    # -- warm no-op: the pure hit path ---------------------------------------
    warm_stats = CheckStats()
    warm = time_op(
        "e15.warm_noop",
        lambda: session.check_many([(FILENAME, source)],
                                   cache=throwaway_cache(),
                                   stats=warm_stats),
        repeats=3, meta={"bindings": NUM_BINDINGS})
    assert warm_stats.cache_misses == 0
    assert payload_bytes(result_to_payload(warm[0])) == \
        payload_bytes(result_to_payload(cold[0]))
    # Store-level shape of the warm no-op (schema v4): one file-entry
    # shard read, nothing written back.
    probe = throwaway_cache()
    session.check_many([(FILENAME, source)], cache=probe)
    assert probe.shards_written == 0
    record_counter("e15.store.warm_shards_read", probe.shards_read)
    record_counter("e15.store.warm_shards_written", probe.shards_written)

    # -- warm no-op through the session's hot tier (no disk at all) ----------
    tier = session.store_hot_tier()
    session.check_many([(FILENAME, source)], cache=cache_path)  # charge it
    hits_before = tier.hits
    warm_hot = time_op(
        "e15.warm_noop_hot",
        lambda: session.check_many([(FILENAME, source)], cache=cache_path),
        repeats=3, meta={"bindings": NUM_BINDINGS})
    assert tier.hits > hits_before, "hot tier never engaged"
    assert payload_bytes(result_to_payload(warm_hot[0])) == \
        payload_bytes(result_to_payload(cold[0]))
    record_counter("e15.store.hot_hits", tier.hits)

    # -- the headline: edit one leaf binding's body --------------------------
    leaf = f"b{NUM_BINDINGS - 1}"          # nothing depends on the last one
    assert not _dependents_of(source, leaf)
    head = (NUM_BINDINGS - 1) - (NUM_BINDINGS - 1) % CLUSTER
    needle = f"b{NUM_BINDINGS - 2} +# b{head} {NUM_BINDINGS - 1}# in"
    edited_leaf = source.replace(
        needle, needle.replace(f"{NUM_BINDINGS - 1}#", "77#"))
    assert edited_leaf != source
    def recheck_after_leaf_edit():
        return session.check_many([(FILENAME, edited_leaf)],
                                  cache=throwaway_cache(),
                                  stats=None)

    edited_results = time_op("e15.single_edit", recheck_after_leaf_edit,
                             repeats=3, meta={"bindings": NUM_BINDINGS,
                                              "edited": leaf})
    last_run = CheckStats()
    session.check_many([(FILENAME, edited_leaf)],
                       cache=throwaway_cache(), stats=last_run)
    assert last_run.cache_misses == 1, \
        f"leaf edit re-checked {last_run.cache_misses} units"
    record_counter("e15.single_edit.misses", last_run.cache_misses)
    # Byte-identity against a cold from-scratch check of the edited source.
    scratch = Session().check(edited_leaf, FILENAME)
    assert payload_bytes(result_to_payload(scratch)) == \
        payload_bytes(result_to_payload(edited_results[0]))

    # -- a scheme-changing edit re-checks exactly SCC + dependents -----------
    victim = f"b{CLUSTER + 1}"             # early cluster: many dependents
    edited_mid = source.replace(f"{victim} = b{CLUSTER} {CLUSTER + 1}#",
                                f"{victim} = b{CLUSTER} 0#")
    assert edited_mid != source
    dependents = _dependents_of(source, victim)
    assert dependents, "victim must have dependents for this scenario"
    mid_results = time_op(
        "e15.edit_with_dependents",
        lambda: session.check_many([(FILENAME, edited_mid)],
                                   cache=throwaway_cache(),
                                   stats=None),
        repeats=1, meta={"edited": victim,
                         "dependents": len(dependents)})
    # The victim's scheme is unchanged (same type), so early cutoff keeps
    # every dependent a hit; only the victim itself re-checks.
    final = CheckStats()
    session.check_many([(FILENAME, edited_mid)],
                       cache=throwaway_cache(), stats=final)
    assert final.cache_misses <= 1 + len(dependents)
    record_counter("e15.edit_with_dependents.misses", final.cache_misses)
    record_counter("e15.edit_with_dependents.dependents", len(dependents))
    scratch_mid = Session().check(edited_mid, FILENAME)
    assert payload_bytes(result_to_payload(scratch_mid)) == \
        payload_bytes(result_to_payload(mid_results[0]))

    # -- canonical_scheme memo: repeated key derivation on this corpus -------
    # Re-deriving codegen keys from a retained CheckResult (what the REPL
    # and repeated `run` calls do) re-renders every dependency scheme;
    # the identity memo turns all repeat renders into hits.
    compiled_session = Session(DriverOptions(compiled=True))
    full_check = compiled_session.check(source, FILENAME)
    assert full_check.ok
    renders = REGISTRY.counter("solver.scheme_renders")
    render_hits = REGISTRY.counter("solver.scheme_render_hits")
    memo_cache = str(tmp_path / "e15-memo-cache")
    base_renders, base_hits = renders.value, render_hits.value
    compiled_session.run_from_check(full_check, entry="b1",
                                    cache=memo_cache)
    first_pass = renders.value - base_renders
    assert first_pass > 0 and render_hits.value == base_hits
    repeats = 3
    for _ in range(repeats):
        compiled_session.run_from_check(full_check, entry="b1",
                                        cache=memo_cache)
    memo_hits = render_hits.value - base_hits
    total_renders = renders.value - base_renders
    assert memo_hits == repeats * first_pass, \
        "every repeat render must hit the memo"
    record_counter("e15.scheme_memo.renders", total_renders)
    record_counter("e15.scheme_memo.hits", memo_hits)
    record_counter("e15.scheme_memo.hit_rate",
                   round(memo_hits / total_renders, 4))

    # -- report ---------------------------------------------------------------
    import benchreport
    full_s = benchreport._TIMINGS["e15.full_check"]["seconds"]
    warm_s = benchreport._TIMINGS["e15.warm_noop"]["seconds"]
    edit_s = benchreport._TIMINGS["e15.single_edit"]["seconds"]
    speedup = full_s / edit_s if edit_s > 0 else float("inf")
    record_counter("e15.speedup.single_edit_vs_full", round(speedup, 2))
    record_counter("e15.speedup.warm_noop_vs_full",
                   round(full_s / warm_s, 2) if warm_s > 0 else 0)

    hot_s = benchreport._TIMINGS["e15.warm_noop_hot"]["seconds"]
    emit("E15: binding-level incremental re-checking "
         f"({NUM_BINDINGS} bindings)", [
             ("full module check", "baseline", f"{full_s * 1000:.1f}ms"),
             ("warm no-op", f"{full_s / warm_s:.1f}x vs full",
              f"{warm_s * 1000:.1f}ms"),
             ("warm no-op, hot tier", f"{full_s / hot_s:.1f}x vs full",
              f"{hot_s * 1000:.1f}ms"),
             ("scheme render memo", f"{memo_hits}/{total_renders} hits",
              f"{memo_hits / total_renders:.0%} hit rate"),
             ("single-binding edit", f"{speedup:.1f}x vs full",
              f"{edit_s * 1000:.1f}ms"),
             ("scheme-changing edit", f"{final.cache_misses} unit(s) "
              "re-checked", "early cutoff"),
         ])

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert speedup >= SPEEDUP_FLOOR, (
        f"single-binding warm re-check was only {speedup:.1f}x faster than "
        f"a whole-module check (floor: {SPEEDUP_FLOOR}x)")
