"""Shared configuration for the benchmark harness."""

import sys

sys.setrecursionlimit(200_000)
