"""Shared configuration for the benchmark harness."""

import sys

import benchreport

# The seed needed sys.setrecursionlimit(200_000) here because the old
# unifier recursed through variable->variable solution chains while zonking.
# The union-find solver is iterative (bench_e11 asserts a 5000-deep chain
# solves under the *default* 1000-frame limit), so only the recursive
# cost-model evaluator and the legacy baseline solver need headroom now.
sys.setrecursionlimit(20_000)


import pytest


@pytest.fixture(autouse=True)
def _isolate_telemetry_registry():
    """Zero the process-global telemetry registry around every benchmark.

    All E-sections run in one pytest process; without this, solver/cache/
    runtime counters recorded by section N would leak into section N+1's
    report (the ISSUE-7 counter-leak bugfix, pinned by
    tests/test_telemetry.py).
    """
    benchreport.drain_registry()
    yield
    benchreport.drain_registry()


def pytest_sessionfinish(session, exitstatus):
    """Flush wall-clock timings collected by the benchmarks to BENCH_perf.json."""
    report = benchreport.write_perf_json()
    if report is not None:
        print(f"\n[benchreport] wrote {benchreport.PERF_JSON_PATH} "
              f"({len(report['timings'])} timings, "
              f"{len(report['counters'])} counters)")
