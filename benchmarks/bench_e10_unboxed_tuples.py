"""E10 (Sections 2.3, 4.2): unboxed tuples, their kinds and register shapes.

Paper claims reproduced:
* ``(# Int, Bool #) :: TYPE (TupleRep [LiftedRep, LiftedRep])``,
  ``(# Int#, Bool #) :: TYPE (TupleRep [IntRep, LiftedRep])``,
  ``(# #) :: TYPE (TupleRep [])`` — and the register shapes follow;
* nesting is computationally irrelevant (same registers) yet kind-distinct
  (the paper's deliberate design choice, our ablation measures the cost);
* a ``divMod``-style function returns its two results in registers with no
  allocation.

The ablation quantifies the design choice of Section 4.2: how many distinct
kinds the non-flattening design produces over a corpus of nested tuple
shapes, versus how many a flattening design would have.
"""

import itertools

import pytest

from benchreport import emit
from repro.core.rep import INT_REP, LIFTED, DOUBLE_REP, TupleRep
from repro.runtime import Evaluator, Program, UnboxedInt
from repro.runtime.programs import div_mod_unboxed_module
from repro.surface.types import (
    BOOL_TY,
    DOUBLE_HASH_TY,
    INT_HASH_TY,
    INT_TY,
    UnboxedTupleTy,
    kind_of_type,
)


def test_report_unboxed_tuple_kinds():
    cases = {
        "(# Int, Bool #)": UnboxedTupleTy((INT_TY, BOOL_TY)),
        "(# Int#, Bool #)": UnboxedTupleTy((INT_HASH_TY, BOOL_TY)),
        "(# #)": UnboxedTupleTy(()),
        "(# Int, (# Bool, Double# #) #)": UnboxedTupleTy(
            (INT_TY, UnboxedTupleTy((BOOL_TY, DOUBLE_HASH_TY)))),
    }
    rows = []
    for name, type_ in cases.items():
        kind = kind_of_type(type_)
        shape = tuple(r.value for r in kind.rep.register_shape())
        rows.append((name, "TYPE (TupleRep [...])",
                     f"{kind.pretty()} -> registers {shape}"))
    emit("E10: unboxed tuple kinds and register shapes", rows)
    assert kind_of_type(cases["(# #)"]).rep.register_count() == 0
    assert kind_of_type(cases["(# Int#, Bool #)"]).rep == \
        TupleRep([INT_REP, LIFTED])


def test_report_nesting_ablation():
    """Nesting keeps kinds distinct even when representations coincide."""
    atoms = (LIFTED, INT_REP, DOUBLE_REP)
    nested = []
    for a, b, c in itertools.product(atoms, repeat=3):
        nested.append(TupleRep([a, TupleRep([b, c])]))
        nested.append(TupleRep([TupleRep([a, b]), c]))
        nested.append(TupleRep([a, b, c]))
    distinct_kinds = len(set(nested))
    distinct_flattened = len({rep.flatten() for rep in nested})
    distinct_shapes = len({rep.register_shape() for rep in nested})
    emit("E10 ablation: nesting-preserving kinds (the paper's choice)", [
        ("nested tuple types considered", "-", len(nested)),
        ("distinct kinds (paper design)", "more", distinct_kinds),
        ("distinct kinds if flattened", "fewer", distinct_flattened),
        ("distinct register shapes", "fewer", distinct_shapes),
        ("lost polymorphism (kinds / shapes)", ">1x",
         f"{distinct_kinds / distinct_shapes:.1f}x"),
    ])
    assert distinct_kinds > distinct_flattened == distinct_shapes


def test_report_divmod_in_registers():
    program = Program.from_module(div_mod_unboxed_module())
    evaluator = Evaluator(program)
    value = evaluator.run("divMod#", UnboxedInt(29), UnboxedInt(4))
    emit("E10: divMod# returns via registers (Section 2.3)", [
        ("divMod# 29 4", "(# 7#, 1# #)", value.show(evaluator.heap)),
        ("tuple allocations", "0", evaluator.costs.heap_allocations),
    ])
    assert value.components == (UnboxedInt(7), UnboxedInt(1))
    assert evaluator.costs.heap_allocations == 0


@pytest.mark.benchmark(group="e10-tuples")
def test_bench_tuple_kind_computation(benchmark):
    types = [UnboxedTupleTy((INT_TY, INT_HASH_TY, DOUBLE_HASH_TY))] * 50

    def run():
        return [kind_of_type(t).rep.register_shape() for t in types]
    benchmark(run)


@pytest.mark.benchmark(group="e10-tuples")
def test_bench_divmod(benchmark):
    program = Program.from_module(div_mod_unboxed_module())

    def run():
        evaluator = Evaluator(program)
        return evaluator.run("divMod#", UnboxedInt(1000), UnboxedInt(7))
    result = benchmark(run)
    assert result.components == (UnboxedInt(142), UnboxedInt(6))
