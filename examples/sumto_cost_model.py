"""The Section 2.1 experiment: boxed ``sumTo`` vs unboxed ``sumTo#``.

Run with:  python examples/sumto_cost_model.py [n]

The paper measures 10,000,000 iterations compiled by GHC: < 0.01 s unboxed,
> 2 s boxed.  Our cost-model runtime reproduces the *shape* of that result:
the unboxed loop performs no memory traffic at all, while the boxed loop
allocates boxes and thunks every iteration.
"""

import sys

sys.setrecursionlimit(200_000)

from repro.runtime import run_sum_to_boxed, run_sum_to_unboxed


def main(n=400):
    print(f"sumTo 0 {n}  (boxed Int)   vs   sumTo# 0 {n}#  (unboxed Int#)\n")
    boxed_result, boxed = run_sum_to_boxed(n)
    unboxed_result, unboxed = run_sum_to_unboxed(n)
    assert boxed_result == unboxed_result == n * (n + 1) // 2
    print(f"both compute {boxed_result}\n")

    rows = [
        ("heap allocations", boxed.heap_allocations, unboxed.heap_allocations),
        ("words allocated", boxed.words_allocated, unboxed.words_allocated),
        ("thunks allocated", boxed.thunk_allocations,
         unboxed.thunk_allocations),
        ("thunks forced", boxed.thunk_forces, unboxed.thunk_forces),
        ("pointer reads", boxed.pointer_reads, unboxed.pointer_reads),
        ("primops executed", boxed.primops, unboxed.primops),
        ("memory traffic (total)", boxed.memory_traffic(),
         unboxed.memory_traffic()),
        ("estimated cycles", boxed.estimated_cycles(),
         unboxed.estimated_cycles()),
    ]
    print(f"{'metric':<26} {'boxed':>12} {'unboxed':>12}")
    for metric, b, u in rows:
        print(f"{metric:<26} {b:>12} {u:>12}")
    ratio = boxed.estimated_cycles() / max(1, unboxed.estimated_cycles())
    print(f"\nboxed / unboxed cycle ratio: {ratio:.1f}x "
          f"(the paper's wall-clock gap is >100x on native code)")
    print("the unboxed loop, like the paper's, touches the heap "
          f"{unboxed.memory_traffic()} times")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
