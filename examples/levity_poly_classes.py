"""Levity-polymorphic type classes: the Section 7.3 walkthrough.

Run with:  python examples/levity_poly_classes.py

Shows the generalised ``Num (a :: TYPE r)`` class, the ``Num Int#`` instance
built from primops, the dictionary that implements it, ``3# + 4#`` running
without boxing, and the ``abs1`` / ``abs2`` contrast.
"""

from repro.classes import (
    ABS1_BINDING,
    ABS2_BINDING,
    ABS_SIGNATURE,
    dictionary_binding,
    dictionary_data_decl,
    method_reference_arity,
    selector_arity,
    standard_class_env,
)
from repro.core.errors import LevityError
from repro.infer import Inferencer, infer_binding, infer_expr
from repro.pretty import render_scheme
from repro.runtime import Evaluator, Program
from repro.surface.ast import ELitDoubleHash, ELitIntHash, ELitInt, EVar, apply
from repro.surface.prelude import prelude_env
from repro.surface.types import INT_HASH_TY


def main():
    inferencer = Inferencer()
    env = prelude_env()
    class_env = standard_class_env(levity_polymorphic=True,
                                   inferencer=inferencer, env=env)
    env = env.bind_many(class_env.all_method_schemes())
    info = class_env.class_info("Num")

    print("The generalised class and its selector types:")
    print("  class Num (a :: TYPE r) where (+), (-), (*), negate, abs")
    plus_scheme = info.selector_scheme(info.method("+"))
    print(f"  (+) :: {plus_scheme.pretty()}")
    print(f"  shown to users as:  {render_scheme(plus_scheme)}\n")

    print("The dictionary is an ordinary lifted record (Section 7.3):")
    print(f"  {dictionary_data_decl(info).pretty()}")
    name, expr = dictionary_binding(
        info, class_env.lookup_instance("Num", INT_HASH_TY))
    print(f"  {name} = {expr.pretty()}\n")

    print("Using the class at unboxed and boxed types:")
    evaluator = Evaluator(Program(class_env=class_env))
    for label, program in [
            ("3# + 4#", apply(EVar("+"), ELitIntHash(3), ELitIntHash(4))),
            ("abs (negate 5#)",
             apply(EVar("abs"), apply(EVar("negate"), ELitIntHash(5)))),
            ("2.5## * 4.0##",
             apply(EVar("*"), ELitDoubleHash(2.5), ELitDoubleHash(4.0))),
            ("3 + 4 (boxed)", apply(EVar("+"), ELitInt(3), ELitInt(4)))]:
        type_ = infer_expr(program, env=env, class_env=class_env)
        value = evaluator.force(evaluator.eval(program))
        print(f"  {label:<18} :: {type_.pretty():<8} = "
              f"{value.show(evaluator.heap)}")
    print()

    print("abs1 vs abs2 (η-equivalent definitions are not equivalent!):")
    abs1 = infer_binding(ABS1_BINDING.name, ABS1_BINDING.params,
                         ABS1_BINDING.rhs, signature=ABS_SIGNATURE,
                         env=env, class_env=class_env)
    print(f"  abs1 = abs       accepted, compiled arity "
          f"{selector_arity(info, 'abs')} (just the dictionary)")
    try:
        infer_binding(ABS2_BINDING.name, ABS2_BINDING.params,
                      ABS2_BINDING.rhs, signature=ABS_SIGNATURE,
                      env=env, class_env=class_env)
    except LevityError as exc:
        print(f"  abs2 x = abs x   rejected, would have arity "
              f"{method_reference_arity(info, 'abs', 1)}:")
        print(f"      {exc}")


if __name__ == "__main__":
    main()
