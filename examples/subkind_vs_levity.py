"""The old world and the new: OpenKind sub-kinding vs levity polymorphism.

Run with:  python examples/subkind_vs_levity.py

Reproduces the Section 3 pain points under the legacy (pre-GHC-8) design and
shows how the levity-polymorphism design of Section 4 resolves each.
"""

from repro.core.kinds import REP_KIND
from repro.infer import infer_binding
from repro.subkind import (
    LEGACY_ERROR,
    describe_error_message,
    hash_kind_loses_calling_convention,
    legacy_infer_wrapper_kind,
    legacy_instantiation_ok,
    legacy_restrictions,
)
from repro.surface.ast import EApp, ELitString, EVar
from repro.surface.prelude import prelude_env
from repro.surface.types import (
    Binder,
    CHAR_HASH_TY,
    DOUBLE_HASH_TY,
    ForAllTy,
    INT_HASH_TY,
    INT_TY,
    STRING_TY,
    TyVar,
    UnboxedTupleTy,
    fun,
    rep_var_kind,
)


def main():
    print("1. The fragile magic of error (Section 3.3)\n")
    print(f"   legacy {LEGACY_ERROR.pretty()}")
    print(f"   error @Int#   -> "
          f"{'accepted' if legacy_instantiation_ok(LEGACY_ERROR, INT_HASH_TY) else 'rejected'}")
    wrapper = legacy_infer_wrapper_kind(LEGACY_ERROR)
    print(f"   user wrapper  {wrapper.pretty()}")
    print(f"   myError @Int# -> "
          f"{'accepted' if legacy_instantiation_ok(wrapper, INT_HASH_TY) else 'rejected'}")
    print(f"   error message: {describe_error_message(wrapper, INT_HASH_TY)}\n")

    print("   With levity polymorphism the wrapper keeps full generality:")
    sig = ForAllTy((Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
                   fun(STRING_TY, TyVar("a", rep_var_kind("r"))))
    result = infer_binding("myError", ["s"],
                           EApp(EVar("error"), ELitString("Program error")),
                           signature=sig, env=prelude_env())
    print(f"   myError :: {result.scheme.pretty()}  -- accepted\n")

    print("2. '#' erases calling conventions; TYPE r records them (§3.2, §7.1)\n")
    report = hash_kind_loses_calling_convention(
        (INT_HASH_TY, CHAR_HASH_TY, DOUBLE_HASH_TY,
         UnboxedTupleTy((INT_TY, INT_TY))))
    for name, entry in report.items():
        if isinstance(entry, dict):
            print(f"   {name:<18} legacy {entry['legacy_kind']:<4} "
                  f"modern {entry['modern_kind']:<35} "
                  f"registers {entry['register_shape']}")
    print()

    print("3. The restrictions the old design imposed, now lifted (§7.1)\n")
    for key, text in legacy_restrictions().items():
        print(f"   [{key}] {text}")


if __name__ == "__main__":
    main()
