"""The formal pipeline: L programs, their types, their compilation to M, and execution.

Run with:  python examples/compile_to_machine.py

Walks the example catalogue of the L calculus (Figures 2-4) through the
type checker, the compiler of Figure 7, and the M machine of Figures 5-6,
and then checks the paper's four theorems on a freshly generated random
program.
"""

from repro.compile import compile_and_run, compile_expr
from repro.lang_l import Context, evaluate, type_of
from repro.lang_l.examples import LEVITY_VIOLATIONS, WELL_TYPED
from repro.metatheory import check_all, generate_program
from repro.core.errors import LevityError, TypeCheckError


def main():
    ctx = Context()
    print("Well-typed L programs, compiled and run on the M machine:\n")
    for example in WELL_TYPED:
        type_ = type_of(ctx, example.expr)
        result = compile_and_run(example.expr)
        outcome = "⊥ (error)" if result.aborted else result.unwrap().pretty()
        print(f"  {example.name:<28} :: {type_.pretty():<40} => {outcome}")

    print("\nLevity-polymorphic programs the type system rejects (Section 5):\n")
    for example in LEVITY_VIOLATIONS:
        try:
            type_of(ctx, example.expr)
            verdict = "UNEXPECTEDLY ACCEPTED"
        except LevityError as exc:
            verdict = f"rejected: {str(exc)[:70]}..."
        except TypeCheckError as exc:
            verdict = f"rejected: {str(exc)[:70]}..."
        print(f"  {example.name:<28} {verdict}")

    print("\nA generated program and the Section 6 theorems along its trace:\n")
    program = generate_program(seed=2024, depth=4)
    print(f"  program : {program.pretty()[:100]}...")
    print(f"  type    : {type_of(ctx, program).pretty()}")
    compiled = compile_expr(program)
    print(f"  M code  : {compiled.pretty()[:100]}...")
    print(f"  L value : {evaluate(program).value}")
    report = check_all(program, max_steps=50)
    print(f"  theorems: {len(report.reports)} instances checked along "
          f"{report.program_steps} steps; all hold = {report.all_hold}")


if __name__ == "__main__":
    main()
