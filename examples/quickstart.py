"""Quickstart: kinds as calling conventions, in five minutes.

Run with:  python examples/quickstart.py

This walks through the paper's core ideas using the public API:
1. every value type has a kind ``TYPE r`` that fixes its runtime
   representation (and hence calling convention);
2. inference never *infers* levity polymorphism (``f x = x`` defaults to
   lifted types), but declared levity polymorphism is checked;
3. levity-polymorphic binders are rejected — the ``bTwice`` example;
4. the formal calculus L compiles to the machine language M and runs.
"""

from repro.core.kinds import REP_KIND
from repro.core.errors import LevityError
from repro.infer import infer_binding, infer_expr
from repro.pretty import PrinterOptions, render_scheme
from repro.surface.ast import EApp, ELitIntHash, ELitString, EVar, apply
from repro.surface.prelude import DOLLAR_SCHEME, prelude_env
from repro.surface.types import (
    Binder,
    BOOL_TY,
    ForAllTy,
    INT_HASH_TY,
    INT_TY,
    STRING_TY,
    TyVar,
    UnboxedTupleTy,
    fun,
    kind_of_type,
    rep_var_kind,
)


def section(title):
    print(f"\n--- {title} ---")


def main():
    env = prelude_env()

    section("1. Kinds describe runtime representations (Section 4)")
    for name, type_ in [("Int", INT_TY), ("Int#", INT_HASH_TY),
                        ("Int -> Int#", fun(INT_TY, INT_HASH_TY)),
                        ("(# Int, Int# #)",
                         UnboxedTupleTy((INT_TY, INT_HASH_TY)))]:
        kind = kind_of_type(type_)
        shape = tuple(r.value for r in kind.rep.register_shape())
        print(f"  {name:<18} :: {kind.pretty():<35} registers: {shape}")

    section("2. Inference never infers levity polymorphism (Section 5.2)")
    result = infer_binding("f", ["x"], EVar("x"), env=env)
    print(f"  f x = x            is inferred at   {result.scheme.pretty()}")
    print(f"  (representation variables defaulted: "
          f"{result.defaulted_rep_vars})")

    section("3. Declared levity polymorphism is checked (Sections 5.1, 3.3)")
    my_error_sig = ForAllTy(
        (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
        fun(STRING_TY, TyVar("a", rep_var_kind("r"))))
    ok = infer_binding("myError", ["s"],
                       EApp(EVar("error"), ELitString("Program error")),
                       signature=my_error_sig, env=env)
    print(f"  myError :: {ok.scheme.pretty()}   -- accepted")

    levity_id_sig = ForAllTy(
        (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
        fun(TyVar("a", rep_var_kind("r")), TyVar("a", rep_var_kind("r"))))
    try:
        infer_binding("f", ["x"], EVar("x"), signature=levity_id_sig, env=env)
    except LevityError as exc:
        print(f"  f :: forall r (a :: TYPE r). a -> a   -- rejected:")
        print(f"      {exc}")

    section("4. ($) works at unboxed result types; printing defaults reps")
    print(f"  ($) shown to users:    {render_scheme(DOLLAR_SCHEME)}")
    print(f"  with explicit reps:    "
          f"{render_scheme(DOLLAR_SCHEME, PrinterOptions(print_explicit_runtime_reps=True))}")
    print(f"  3# +# 4#           ::  "
          f"{infer_expr(apply(EVar('+#'), ELitIntHash(3), ELitIntHash(4)), env=env).pretty()}")

    section("5. The formal pipeline: L -> M -> run (Section 6)")
    from repro.compile import compile_expr, compile_and_run
    from repro.lang_l.examples import DOLLAR
    from repro.lang_l.syntax import app, boxed_int, Case, Var, lam, INT, TyApp, RepApp, I
    from repro.lang_l import INT_HASH
    unbox = lam("b", INT, Case(Var("b"), "x", Var("x")))
    program = app(TyApp(TyApp(RepApp(DOLLAR, I), INT), INT_HASH),
                  unbox, boxed_int(17))
    compiled = compile_expr(program)
    print(f"  L  source : ($) @I @Int @Int# unbox (I#[17])")
    print(f"  M  code   : {compiled.pretty()}")
    outcome = compile_and_run(program)
    print(f"  M  result : {outcome.unwrap().pretty()}   "
          f"({outcome.costs.steps} machine steps)")


if __name__ == "__main__":
    main()
