"""Tests for the M machine (Figures 5-6), joinability, and compilation (Figure 7)."""

import pytest

from repro.compile import VarEnv, compile_and_run, compile_expr
from repro.core.errors import CompilationError, MachineError
from repro.lang_l import Context, INT, INT_HASH, Lit as LLit, Var as LVar, lam
from repro.lang_l.examples import LEVITY_VIOLATIONS, WELL_TYPED
from repro.lang_l.syntax import App as LApp, Con as LCon, boxed_int
from repro.lang_m import (
    Machine,
    MAppLit,
    MAppVar,
    MCase,
    MConLit,
    MConVar,
    MError,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MVarRef,
    alpha_equivalent,
    fresh_integer_var,
    fresh_pointer_var,
    joinable,
    run,
)


class TestMachine:
    def test_literal_is_final(self):
        result = run(MLit(42))
        assert result.unwrap() == MLit(42)
        assert result.costs.steps == 0

    def test_lazy_let_allocates_and_val_reads(self):
        p = fresh_pointer_var()
        expr = MLet(p, MConLit(7), MVarRef(p))
        result = run(expr)
        assert result.unwrap() == MConLit(7)
        assert result.costs.heap_lookups >= 1

    def test_thunk_is_forced_once_and_updated(self):
        """EVAL/FCE implement thunk sharing: the second read sees the value."""
        p = fresh_pointer_var()
        i = fresh_integer_var()
        # let p = case I#[3] of I#[i] -> I#[i]  in  case p of I#[i] -> p
        thunk_body = MCase(MConLit(3), i, MConVar(i))
        expr = MLet(p, thunk_body, MCase(MVarRef(p), i, MVarRef(p)))
        result = run(expr)
        assert result.unwrap() == MConLit(3)
        assert result.costs.thunk_forces == 1
        assert result.costs.thunk_updates == 1

    def test_strict_let_evaluates_rhs(self):
        i = fresh_integer_var()
        expr = MLetStrict(i, MLit(5), MConVar(i))
        result = run(expr)
        assert result.unwrap() == MConLit(5)
        assert result.costs.heap_allocations == 0

    def test_pointer_application(self):
        p_arg = fresh_pointer_var()
        p_binder = fresh_pointer_var()
        expr = MLet(p_arg, MConLit(9),
                    MAppVar(MLam(p_binder, MVarRef(p_binder)), p_arg))
        assert run(expr).unwrap() == MConLit(9)

    def test_integer_application(self):
        i = fresh_integer_var()
        expr = MAppLit(MLam(i, MVarRef(i)), 11)
        assert run(expr).unwrap() == MLit(11)

    def test_register_sort_mismatch_is_a_machine_error(self):
        """Passing an integer literal to a pointer-binder λ is stuck (IPOP)."""
        p = fresh_pointer_var()
        with pytest.raises(MachineError):
            run(MAppLit(MLam(p, MVarRef(p)), 3))

    def test_error_aborts(self):
        result = run(MError())
        assert result.aborted
        with pytest.raises(MachineError):
            result.unwrap()

    def test_case_unpacks_boxed_integer(self):
        i = fresh_integer_var()
        assert run(MCase(MConLit(21), i, MVarRef(i))).unwrap() == MLit(21)

    def test_unbound_pointer_is_a_machine_error(self):
        with pytest.raises(MachineError):
            run(MVarRef(fresh_pointer_var()))

    def test_trace_records_states(self):
        i = fresh_integer_var()
        machine = Machine(MLetStrict(i, MLit(1), MVarRef(i)))
        states = machine.trace()
        assert len(states) >= 3
        assert states[0].expr == MLetStrict(i, MLit(1), MVarRef(i))


class TestJoinability:
    def test_equal_literals_are_joinable(self):
        assert joinable(MLit(4), MLit(4)).joinable

    def test_distinct_literals_are_not_joinable(self):
        assert not joinable(MLit(4), MLit(5)).joinable

    def test_value_and_administrative_let_are_joinable(self):
        p = fresh_pointer_var()
        assert joinable(MConLit(3), MLet(p, MConLit(3), MVarRef(p))).joinable

    def test_both_error_joinable(self):
        assert joinable(MError(), MError()).joinable

    def test_error_and_value_not_joinable(self):
        assert not joinable(MError(), MLit(0)).joinable

    def test_lambdas_probed_for_joinability(self):
        i1, i2 = fresh_integer_var(), fresh_integer_var()
        identity = MLam(i1, MVarRef(i1))
        eta = MLam(i2, MAppLit(MLam(i1, MVarRef(i1)), 0))  # constant 0
        assert joinable(identity, identity).joinable
        assert not joinable(identity, eta).joinable

    def test_alpha_equivalence(self):
        i1, i2 = fresh_integer_var(), fresh_integer_var()
        assert alpha_equivalent(MLam(i1, MVarRef(i1)), MLam(i2, MVarRef(i2)))
        p = fresh_pointer_var()
        assert not alpha_equivalent(MLam(i1, MVarRef(i1)),
                                    MLam(p, MVarRef(p)))


class TestCompilation:
    @pytest.mark.parametrize("example", WELL_TYPED, ids=lambda e: e.name)
    def test_every_well_typed_example_compiles(self, example):
        compile_expr(example.expr)  # must not raise

    @pytest.mark.parametrize("example",
                             [e for e in WELL_TYPED
                              if e.expected_value is not None or e.diverges],
                             ids=lambda e: e.name)
    def test_compiled_code_computes_the_same_answer(self, example):
        from repro.lang_l.syntax import Con as SrcCon, Lit as SrcLit

        result = compile_and_run(example.expr)
        if example.diverges:
            assert result.aborted
            return
        value = result.unwrap()
        expected = example.expected_value
        if isinstance(expected, SrcLit):
            assert value == MLit(expected.value)
        elif isinstance(expected, SrcCon):
            assert value == MConLit(expected.argument.value)

    @pytest.mark.parametrize("example", LEVITY_VIOLATIONS,
                             ids=lambda e: e.name)
    def test_levity_violations_do_not_compile(self, example):
        """The compiler is partial exactly on the programs typing rejects."""
        with pytest.raises(CompilationError):
            compile_expr(example.expr)

    def test_type_and_rep_abstractions_are_erased(self):
        from repro.lang_l.examples import DOLLAR
        result = compile_expr(DOLLAR)
        assert result.erased_type_nodes >= 3
        # The compiled code is a plain λ-term with no type structure left.
        assert isinstance(result.code, MLam)

    def test_lazy_vs_strict_lets_follow_argument_kinds(self):
        boxed_app = LApp(lam("x", INT, LVar("x")), boxed_int(1))
        unboxed_app = LApp(lam("x", INT_HASH, LVar("x")), LLit(1))
        assert compile_expr(boxed_app).lazy_lets == 1
        assert compile_expr(boxed_app).strict_lets >= 1  # the I#[1] box
        assert compile_expr(unboxed_app).lazy_lets == 0
        assert compile_expr(unboxed_app).strict_lets == 1

    def test_free_variable_does_not_compile(self):
        with pytest.raises(CompilationError):
            compile_expr(LVar("ghost"))

    def test_compilation_with_environment(self):
        env = VarEnv().bind("x", fresh_pointer_var())
        ctx = Context().bind_term("x", INT)
        result = compile_expr(LVar("x"), ctx, env)
        assert isinstance(result.code, MVarRef)

    def test_var_env_compatibility_check(self):
        ctx = Context().bind_term("x", INT)
        good = VarEnv().bind("x", fresh_pointer_var())
        bad = VarEnv().bind("x", fresh_integer_var())
        assert good.compatible_with(ctx)
        assert not bad.compatible_with(ctx)
        assert not VarEnv().compatible_with(ctx)


class TestWholeLanguageMachine:
    """The fix / primop / literal-case machine rules (whole-language L)."""

    def test_primop_on_literals(self):
        from repro.lang_m import MPrimOp

        result = run(MPrimOp("+#", (MLit(1), MLit(2))))
        assert result.unwrap() == MLit(3)
        assert result.costs.primops == 1

    def test_primop_frames_evaluate_operands_left_to_right(self):
        from repro.lang_m import MPrimOp

        nested = MPrimOp("-#", (MPrimOp("+#", (MLit(1), MLit(2))),
                                MPrimOp("*#", (MLit(2), MLit(3)))))
        result = run(nested)
        assert result.unwrap() == MLit(-3)
        assert result.costs.primops == 3

    def test_quot_by_zero_aborts(self):
        from repro.lang_m import MPrimOp

        result = run(MPrimOp("quotInt#", (MLit(1), MLit(0))))
        assert result.aborted
        result = run(MPrimOp("remInt#", (MLit(1), MLit(0))))
        assert result.aborted

    def test_unknown_primop_is_a_machine_error(self):
        from repro.lang_m import MPrimOp

        with pytest.raises(MachineError):
            run(MPrimOp("frobInt#", (MLit(1),)))

    def test_case_lit_selects_branch_then_default(self):
        from repro.lang_m import MCaseLit, MPrimOp

        scrutinee = MPrimOp("+#", (MLit(1), MLit(1)))
        expr = MCaseLit(scrutinee, ((1, MLit(10)), (2, MLit(20))), MLit(99))
        result = run(expr)
        assert result.unwrap() == MLit(20)
        assert result.costs.branches == 1
        fallthrough = MCaseLit(MLit(7), ((1, MLit(10)),), MLit(99))
        assert run(fallthrough).unwrap() == MLit(99)

    def test_fix_allocates_and_continues_with_the_body(self):
        from repro.lang_m import MFix

        p = fresh_pointer_var("loop")
        result = run(MFix(p, MLit(7)))
        assert result.unwrap() == MLit(7)
        assert result.costs.fix_unrollings == 1
        assert result.costs.heap_allocations == 1

    def test_fix_is_rejected_on_integer_binders(self):
        from repro.lang_m import MFix

        with pytest.raises(ValueError):
            MFix(fresh_integer_var(), MLit(1))

    def test_compiled_recursion_memoises_the_fix_thunk(self):
        """100 loop iterations re-enter the knot via EVAL/FCE sharing:
        the heap cell is blackholed and updated on the first unrolling,
        so `fix_unrollings` stays O(1), not O(n)."""
        from repro.driver.lower import lower_entry
        from repro.frontend import parse_module
        from repro.infer import infer_module

        source = (
            "sumTo# :: Int# -> Int# -> Int#\n"
            "sumTo# acc n = case n <=# 0# of "
            "{ 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n"
            "main :: Int#\n"
            "main = sumTo# 0# 100#\n")
        parsed = parse_module(source)
        schemes = infer_module(parsed.module).schemes
        term = lower_entry(parsed.module, schemes, "main")
        compiled = compile_expr(term)
        assert compiled.fix_forms == 1
        assert compiled.primop_forms >= 3
        outcome = run(compiled.code)
        assert outcome.unwrap() == MLit(5050)
        assert outcome.costs.fix_unrollings <= 3
        assert outcome.costs.primops >= 300
        assert outcome.costs.branches >= 100

    def test_costs_dict_carries_the_new_counters(self):
        from repro.lang_m import MPrimOp

        costs = run(MPrimOp("+#", (MLit(1), MLit(2)))).costs.as_dict()
        assert {"primops", "fix_unrollings", "branches"} <= set(costs)
