"""Tests for the project layer: module/import syntax, the module DAG,
and cross-module incremental builds.

Covers the guarantees ``python -m repro build`` makes:

* ``module M where`` headers and ``import N`` declarations parse, print
  and validate (header first, imports before code);
* the module graph rejects import cycles, self-imports, unknown imports
  and duplicate module names with span-carrying diagnostics, and skips
  modules downstream of a failure structurally;
* diamond imports resolve each shared dependency once; whole-module
  results come back in input order under ``--jobs``;
* the schema-v3 cache gives **cross-file early cutoff**: a body-only
  edit re-checks exactly one unit (importing modules are file-level
  hits, never re-parsed), a scheme change invalidates precisely the
  downstream units naming it, a moved-but-unedited module stays a hit,
  and warm results are byte-identical to cold ones;
* a schema-v2 cache document degrades to a cold cache, not an error;
* scope errors over a sibling module's export gain an "add import" note;
* the REPL ``:load`` rides the same plan and re-checks cross-module
  dependents on redefinition.
"""

import json
import os

import pytest

from repro.driver import (
    CheckStats,
    ResultCache,
    Session,
    build_project_plan,
    check_project,
    discover_sources,
    run_project,
)
from repro.driver.batch import (
    CACHE_SCHEMA,
    payload_bytes,
    result_to_payload,
)
from repro.frontend import parse_module
from repro.frontend.parser import ParseError
from repro.surface.ast import ImportDecl, ModuleHeader
from repro.telemetry import TRACER, validate_events

NAT = """module Nat where

sumTo# :: Int# -> Int# -> Int#
sumTo# acc n = case n ==# 0# of { 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }

double# :: Int# -> Int#
double# n = n +# n
"""

BOX = """module Box where

unbox :: Int -> Int#
unbox b = case b of { I# x -> x }

rebox :: Int# -> Int
rebox n = I# n
"""

WORLD = """module World where
import Nat

runSum# :: Int# -> Int#
runSum# n = runRW# (\\s -> sumTo# 0# n)
"""

MAIN = """module Main where
import Box
import Nat
import World

main :: Int
main = rebox (double# (runSum# 10#))
"""

PROJECT = [("nat.lev", NAT), ("box.lev", BOX), ("world.lev", WORLD),
           ("main.lev", MAIN)]


def project_bytes(results):
    return [payload_bytes(result_to_payload(result)) for result in results]


class TestModuleSyntax:
    def test_header_and_imports_parse(self):
        parsed = parse_module(MAIN, "main.lev")
        assert parsed.module.name == "Main"
        header = parsed.module.header()
        assert isinstance(header, ModuleHeader)
        assert parsed.module.imports() == ["Box", "Nat", "World"]

    def test_pretty_round_trips(self):
        parsed = parse_module(WORLD, "world.lev")
        printed = parsed.module.pretty()
        assert "module World where" in printed
        assert "import Nat" in printed
        again = parse_module(printed, "world.lev")
        assert again.module.pretty() == printed

    def test_header_must_be_first(self):
        with pytest.raises(ParseError) as exc:
            parse_module("x = 1\nmodule Late where\n", "bad.lev")
        assert "first declaration" in str(exc.value)

    def test_duplicate_header_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module A where\nmodule B where\n", "bad.lev")

    def test_imports_precede_code(self):
        with pytest.raises(ParseError) as exc:
            parse_module("module A where\nx = 1\nimport B\n", "bad.lev")
        assert "before all other declarations" in str(exc.value)

    def test_import_decl_spans_recorded(self):
        parsed = parse_module(MAIN, "main.lev")
        spans = [span for decl, span
                 in zip(parsed.module.decls, parsed.decl_span_list)
                 if isinstance(decl, ImportDecl)]
        assert [span.line for span in spans] == [2, 3, 4]

    def test_single_file_mode_warns_on_imports(self):
        result = Session().check(WORLD, "world.lev")
        warnings = [d for d in result.diagnostics if d.severity == "warning"]
        assert any("single-file mode" in d.message for d in warnings)
        # The import itself does not resolve: the foreign name is an error.
        assert not result.ok


class TestProjectPlan:
    def test_dag_levels(self):
        session = Session()
        plan = build_project_plan(PROJECT, session.pipeline, session.options)
        assert plan.ok
        by_file = {node.filename: node for node in plan.nodes}
        assert by_file["nat.lev"].level == 0
        assert by_file["box.lev"].level == 0
        assert by_file["world.lev"].level == 1
        assert by_file["main.lev"].level == 2

    def test_import_cycle_rejected_with_spans(self):
        cyc_a = "module A where\nimport B\n\nx :: Int\nx = 1\n"
        cyc_b = "module B where\nimport A\n\ny :: Int\ny = 2\n"
        check = check_project([("a.lev", cyc_a), ("b.lev", cyc_b)],
                              session=Session())
        assert not check.ok
        for result in check.results:
            (diag,) = result.errors
            assert "import cycle: A -> B -> A" in diag.message
            # The span points at the import declaration itself.
            assert diag.span is not None and diag.span.line == 2

    def test_self_import_rejected(self):
        src = "module A where\nimport A\n\nx :: Int\nx = 1\n"
        check = check_project([("a.lev", src)], session=Session())
        (diag,) = check.results[0].errors
        assert "imports itself" in diag.message

    def test_unknown_import(self):
        src = "module A where\nimport Nowhere\n\nx :: Int\nx = 1\n"
        check = check_project([("a.lev", src)], session=Session())
        (diag,) = check.results[0].errors
        assert "unknown module 'Nowhere'" in diag.message
        assert diag.span is not None and diag.span.line == 2

    def test_duplicate_module_names(self):
        one = "module A where\n\nx :: Int\nx = 1\n"
        two = "module A where\n\ny :: Int\ny = 2\n"
        check = check_project([("one.lev", one), ("two.lev", two)],
                              session=Session())
        assert check.results[0].ok          # first file wins
        (diag,) = check.results[1].errors
        assert "duplicate module 'A'" in diag.message

    def test_parse_failure_skips_importers(self):
        broken = "module B where\n\nx = = 1\n"
        importer = "module A where\nimport B\n\ny :: Int\ny = 1\n"
        check = check_project([("b.lev", broken), ("a.lev", importer)],
                              session=Session())
        assert not check.results[0].ok      # the parse error itself
        (diag,) = check.results[1].errors
        assert "its import 'B' failed" in diag.message
        assert diag.span is not None and diag.span.line == 2

    def test_diamond_imports_resolve_once(self):
        base = "module D where\n\nv :: Int\nv = 4\n"
        left = "module B where\nimport D\n\nl :: Int\nl = v\n"
        right = "module C where\nimport D\n\nr :: Int\nr = v\n"
        top = "module A where\nimport B\nimport C\n\nt :: Int\nt = l + r\n"
        stats = CheckStats()
        check = check_project(
            [("d.lev", base), ("b.lev", left), ("c.lev", right),
             ("a.lev", top)],
            session=Session(), stats=stats)
        assert check.ok
        assert stats.files == 4
        assert stats.checked == 4           # one unit each, D checked once
        assert [len(level) for level in check.plan.levels] == [1, 2, 1]

    def test_headerless_files_check_but_cannot_be_imported(self):
        plain = "x :: Int\nx = 1\n"
        importer = "module A where\nimport Main\n\ny :: Int\ny = 2\n"
        check = check_project([("plain.lev", plain), ("a.lev", importer)],
                              session=Session())
        assert check.results[0].ok
        (diag,) = check.results[1].errors
        assert "unknown module 'Main'" in diag.message


class TestCrossModuleIncremental:
    def fresh_cache(self, tmp_path):
        return str(tmp_path / "project-cache.json")

    def build(self, items, path, stats=None):
        session = Session()
        cache = ResultCache(path)
        check = check_project(items, cache=cache, session=session,
                              stats=stats)
        cache.save()
        return check

    def test_warm_build_rechecks_nothing(self, tmp_path):
        path = self.fresh_cache(tmp_path)
        cold_stats = CheckStats()
        cold = self.build(PROJECT, path, cold_stats)
        assert cold.ok and cold_stats.checked > 0
        warm_stats = CheckStats()
        warm = self.build(PROJECT, path, warm_stats)
        assert warm_stats.checked == 0
        assert warm_stats.file_hits == len(PROJECT)
        assert project_bytes(warm.results) == project_bytes(cold.results)

    def test_body_edit_rechecks_exactly_one_unit(self, tmp_path):
        path = self.fresh_cache(tmp_path)
        self.build(PROJECT, path)
        edited = NAT.replace("double# n = n +# n", "double# n = n *# 2#")
        assert edited != NAT
        stats = CheckStats()
        check = self.build([("nat.lev", edited)] + PROJECT[1:], path, stats)
        assert check.ok
        # double#'s exported scheme is unchanged: the three importing
        # modules stay whole-file hits (never re-parsed), and within
        # nat.lev only the edited unit misses.
        assert stats.checked == 1, stats.pretty()
        assert stats.file_hits == 3

    def test_scheme_change_invalidates_only_consumers(self, tmp_path):
        base = "module D where\n\nv :: Int\nv = 4\nw :: Int\nw = 5\n"
        left = "module B where\nimport D\n\nl :: Int\nl = v\n"
        right = "module C where\nimport D\n\nr :: Int\nr = w\n"
        items = [("d.lev", base), ("b.lev", left), ("c.lev", right)]
        path = self.fresh_cache(tmp_path)
        self.build(items, path)
        # Change v's scheme (Int -> Bool): B names v and must re-check
        # (and now fails); C references only w and stays a file hit.
        edited = base.replace("v :: Int\nv = 4", "v :: Bool\nv = True")
        stats = CheckStats()
        check = self.build([("d.lev", edited), ("b.lev", left),
                            ("c.lev", right)], path, stats)
        assert check.results[0].ok
        assert not check.results[1].ok      # l = v is now ill-typed
        assert check.results[2].ok
        assert stats.file_hits == 1         # C only
        checked_names = {binding for result in (check.results[0],
                                                check.results[1])
                         for binding in [b.name for b in result.bindings]}
        assert "l" in checked_names

    def test_moved_module_stays_a_hit(self, tmp_path):
        path = self.fresh_cache(tmp_path)
        self.build(PROJECT, path)
        moved = [("src/" + filename, source) for filename, source in PROJECT]
        stats = CheckStats()
        check = self.build(moved, path, stats)
        assert check.ok
        assert stats.checked == 0
        assert [r.filename for r in check.results] == \
            [filename for filename, _ in moved]

    def test_v3_monolithic_document_degrades_to_cold(self, tmp_path):
        # The one-time v3→v4 migration: a legacy monolithic cache *file*
        # at the cache path (v3 entries can never hit under v4 — the
        # schema is hashed into every key) is replaced by a cold shard
        # directory, never an error.
        path = self.fresh_cache(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": CACHE_SCHEMA - 1,
                       "entries": {"junk": {"members": []}}}, handle)
        stats = CheckStats()
        check = self.build(PROJECT, path, stats)
        assert check.ok
        assert stats.checked > 0            # cold, not an error
        assert os.path.isdir(path)          # migrated to the shard layout
        warm_stats = CheckStats()
        self.build(PROJECT, path, warm_stats)
        assert warm_stats.checked == 0      # and rewritten as v4

    def test_parallel_build_matches_serial(self, tmp_path):
        serial = check_project(PROJECT, session=Session())
        with Session() as session:
            parallel = check_project(PROJECT, jobs=2, session=session,
                                     cache=ResultCache(),
                                     stats=CheckStats())
        assert project_bytes(parallel.results) == \
            [payload_bytes(result_to_payload(r)) for r in
             check_project(PROJECT, session=Session(), cache=ResultCache(),
                           stats=CheckStats()).results]
        assert [r.ok for r in parallel.results] == \
            [r.ok for r in serial.results]


class TestCrossModuleScopeHints:
    def test_missing_import_gets_a_note(self):
        user = "module User where\n\nq :: Int\nq = rebox 1#\n"
        check = check_project([("box.lev", BOX), ("user.lev", user)],
                              session=Session())
        result = check.results[1]
        assert not result.ok
        notes = [d for d in result.diagnostics if d.severity == "note"]
        assert any("defined in module 'Box'; add 'import Box'" in d.message
                   for d in notes)

    def test_no_note_when_already_imported(self):
        # 'rebox' is imported but misapplied: the scope error does not
        # occur, so no hint either.
        user = "module User where\nimport Box\n\nq :: Int\nq = rebox 1#\n"
        check = check_project([("box.lev", BOX), ("user.lev", user)],
                              session=Session())
        assert check.results[1].ok
        assert not [d for d in check.results[1].diagnostics
                    if d.severity == "note"]


class TestRunAndDiscovery:
    def test_run_project_entry(self):
        session = Session()
        check = check_project(PROJECT, session=session)
        assert check.ok
        result = run_project(session, check, "main")
        assert result.ok
        assert result.value == "(I# 110#)"

    def test_discover_sources_walks_directories(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.lev").write_text("x = 1\n")
        (tmp_path / "sub" / "b.lev").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("ignored\n")
        items = discover_sources([str(tmp_path)])
        assert [source for _, source in items] == ["x = 1\n", "y = 2\n"]

    def test_build_cli_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        for filename, source in PROJECT:
            (tmp_path / filename).write_text(source)
        cache = str(tmp_path / "cache.json")
        assert main(["build", str(tmp_path), "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["build", str(tmp_path), "--cache", cache,
                     "--stats", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"]
        assert document["stats"]["check"]["checked"] == 0
        modules = {entry["module"] for entry in document["modules"]}
        assert modules == {"Nat", "Box", "World", "Main"}

    def test_project_spans_traced(self):
        TRACER.enable()
        try:
            check_project(PROJECT, session=Session())
            events = TRACER.drain()
        finally:
            TRACER.disable()
            TRACER.drain()
        validate_events(events)
        names = {event["name"] for event in events if event["ph"] == "B"}
        assert {"project.graph", "module.resolve"} <= names


class TestReplLoad:
    def write_project(self, tmp_path):
        for filename, source in PROJECT:
            (tmp_path / filename).write_text(source)

    def test_load_and_eval(self, tmp_path):
        self.write_project(tmp_path)
        session = Session()
        out = session.repl_input(f":load {tmp_path}")
        assert "loaded 4 file(s)" in out
        assert session.repl_input("rebox (runSum# 4#)") == "(I# 10#)"
        assert session.repl_input(":t runSum#") \
            .endswith("runSum# :: Int# -> Int#")

    def test_redefinition_rechecks_cross_module_dependents(self, tmp_path):
        self.write_project(tmp_path)
        session = Session()
        session.repl_input(f":load {tmp_path}")
        # Body-only redefinition: early cutoff, one unit.
        out = session.repl_input("double# n = n *# 2#")
        assert "re-checked 1 unit(s)" in out
        # Scheme-changing redefinition: the cross-module dependents of
        # double# (main in Main) re-check — and fail against Int.
        out = session.repl_input("double# :: Int -> Int\ndouble# n = n + n")
        assert "error" in out

    def test_new_overlay_binding_sees_imports(self, tmp_path):
        self.write_project(tmp_path)
        session = Session()
        session.repl_input(f":load {tmp_path}")
        out = session.repl_input("quad# :: Int# -> Int#\n"
                                 "quad# n = double# (double# n)")
        assert "quad# :: Int# -> Int#" in out
        assert session.repl_input("rebox (quad# 3#)") == "(I# 12#)"
