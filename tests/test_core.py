"""Tests for repro.core: representations, kinds, levity restrictions (Figure 1, §4-5)."""

import pytest

from repro.core import (
    ADDR_REP,
    CHAR_REP,
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    UNIT_TUPLE_REP,
    UNLIFTED,
    WORD_REP,
    ArrowKind,
    KindError,
    LevityChecker,
    LevityPolymorphicArgument,
    LevityPolymorphicBinder,
    RegisterClass,
    RepVar,
    SumRep,
    TupleRep,
    TYPE_INT,
    TYPE_LIFTED,
    TYPE_UNLIFTED,
    TypeKind,
    all_nullary_reps,
    arrow_kind,
    check_argument_kind,
    check_binder_kind,
    fresh_rep_var,
    kind_is_fixed,
    kind_of_type_constructor,
    same_calling_convention,
    type_kind,
    unboxed_tuple_kind,
)


class TestBoxityAndLevity:
    """Figure 1: the boxity × levity grid."""

    def test_lifted_rep_is_boxed_and_lifted(self):
        assert LIFTED.is_boxed() and LIFTED.is_lifted()

    def test_unlifted_rep_is_boxed_but_not_lifted(self):
        assert UNLIFTED.is_boxed() and not UNLIFTED.is_lifted()

    @pytest.mark.parametrize("rep", [INT_REP, WORD_REP, CHAR_REP, ADDR_REP,
                                     FLOAT_REP, DOUBLE_REP])
    def test_unboxed_reps_are_unboxed_and_unlifted(self, rep):
        assert not rep.is_boxed() and not rep.is_lifted()
        assert rep.is_unboxed() and rep.is_unlifted()

    def test_no_rep_is_unboxed_and_lifted(self):
        """The empty corner of Figure 1: lifted implies boxed."""
        for rep in all_nullary_reps():
            if rep.is_lifted():
                assert rep.is_boxed()

    def test_lifted_and_unlifted_pointers_share_calling_convention(self):
        assert same_calling_convention(LIFTED, UNLIFTED)

    def test_int_and_lifted_have_different_calling_conventions(self):
        assert not same_calling_convention(INT_REP, LIFTED)

    def test_float_and_double_use_float_registers(self):
        assert FLOAT_REP.register_shape() == (RegisterClass.FLOAT,)
        assert DOUBLE_REP.register_shape() == (RegisterClass.DOUBLE,)

    def test_int_and_double_have_different_conventions(self):
        assert not same_calling_convention(INT_REP, DOUBLE_REP)


class TestTupleRep:
    """Section 4.2: unboxed tuples occupy several registers."""

    def test_pair_of_pointer_and_int(self):
        rep = TupleRep([LIFTED, INT_REP])
        assert rep.register_shape() == (RegisterClass.GC_POINTER,
                                        RegisterClass.INTEGER)

    def test_nullary_tuple_has_no_registers(self):
        assert UNIT_TUPLE_REP.register_shape() == ()
        assert UNIT_TUPLE_REP.register_count() == 0

    def test_nesting_is_kind_distinct_but_representation_flat(self):
        nested1 = TupleRep([LIFTED, TupleRep([LIFTED, DOUBLE_REP])])
        nested2 = TupleRep([TupleRep([LIFTED, LIFTED]), DOUBLE_REP])
        assert nested1 != nested2                      # distinct kinds
        assert nested1.register_shape() == nested2.register_shape()
        assert nested1.flatten() == nested2.flatten()  # same runtime shape

    def test_flatten_is_idempotent(self):
        rep = TupleRep([INT_REP, TupleRep([LIFTED, TupleRep([DOUBLE_REP])])])
        assert rep.flatten().flatten() == rep.flatten()

    def test_tuple_rep_substitution(self):
        rep = TupleRep([RepVar("r"), INT_REP])
        solved = rep.substitute({"r": LIFTED})
        assert solved == TupleRep([LIFTED, INT_REP])
        assert solved.is_concrete()

    def test_tuple_width_bytes(self):
        assert TupleRep([LIFTED, INT_REP]).width_bytes() == 16
        assert TupleRep([FLOAT_REP]).width_bytes() == 4

    def test_sum_rep_has_tag_plus_union(self):
        rep = SumRep([INT_REP, LIFTED])
        shape = rep.register_shape()
        assert shape[0] == RegisterClass.INTEGER  # the tag
        assert RegisterClass.GC_POINTER in shape
        assert len(shape) == 3


class TestRepVars:
    def test_rep_var_is_not_concrete(self):
        assert not RepVar("r").is_concrete()

    def test_rep_var_has_no_register_shape(self):
        with pytest.raises(ValueError):
            RepVar("r").register_shape()

    def test_rep_var_levity_question_is_rejected(self):
        """One should never ask whether a levity-polymorphic type is lazy (§8.2)."""
        with pytest.raises(ValueError):
            RepVar("r").is_lifted()
        with pytest.raises(ValueError):
            RepVar("r").is_boxed()

    def test_fresh_rep_vars_are_distinct(self):
        assert fresh_rep_var().name != fresh_rep_var().name

    def test_zonk_follows_solutions(self):
        solutions = {"r0": RepVar("r1"), "r1": INT_REP}
        assert RepVar("r0").zonk(solutions.get) == INT_REP

    def test_tuple_rep_free_vars(self):
        rep = TupleRep([RepVar("a"), TupleRep([RepVar("b")]), INT_REP])
        assert rep.free_rep_vars() == {"a", "b"}


class TestKinds:
    def test_type_is_type_lifted_rep(self):
        assert TYPE_LIFTED == TypeKind(LIFTED)
        assert TYPE_LIFTED.pretty() == "Type"

    def test_type_int_pretty(self):
        assert TYPE_INT.pretty() == "TYPE IntRep"

    def test_unboxed_tuple_kind(self):
        kind = unboxed_tuple_kind(INT_REP, LIFTED)
        assert kind == TypeKind(TupleRep([INT_REP, LIFTED]))

    def test_arrow_kind_nesting(self):
        kind = arrow_kind(TYPE_LIFTED, TYPE_LIFTED, TYPE_LIFTED)
        assert isinstance(kind, ArrowKind)
        assert kind.result == ArrowKind(TYPE_LIFTED, TYPE_LIFTED)

    def test_kind_of_type_constructor(self):
        maybe_kind = kind_of_type_constructor(1)
        assert maybe_kind == ArrowKind(TYPE_LIFTED, TYPE_LIFTED)
        assert kind_of_type_constructor(0) == TYPE_LIFTED

    def test_kind_free_rep_vars(self):
        kind = TypeKind(RepVar("r"))
        assert kind.free_rep_vars() == {"r"}
        assert not kind.is_concrete()

    def test_kind_substitution(self):
        kind = TypeKind(RepVar("r"))
        assert kind.substitute_reps({"r": DOUBLE_REP}) == TypeKind(DOUBLE_REP)

    def test_display_defaulting_of_rep_var_kind(self):
        kind = TypeKind(RepVar("r"))
        assert kind.pretty(explicit_runtime_reps=False) == "Type"
        assert kind.pretty(explicit_runtime_reps=True) == "TYPE r"


class TestLevityRestrictions:
    """Section 5.1: the two restrictions."""

    def test_concrete_kinds_are_fixed(self):
        assert kind_is_fixed(TYPE_LIFTED)
        assert kind_is_fixed(TYPE_INT)
        assert kind_is_fixed(TYPE_UNLIFTED)
        assert kind_is_fixed(unboxed_tuple_kind(INT_REP, LIFTED))

    def test_rep_var_kind_is_not_fixed(self):
        assert not kind_is_fixed(TypeKind(RepVar("r")))

    def test_arrow_kind_is_not_a_value_kind(self):
        assert not kind_is_fixed(ArrowKind(TYPE_LIFTED, TYPE_LIFTED))

    def test_binder_check_accepts_concrete(self):
        check_binder_kind(TYPE_INT)  # does not raise

    def test_binder_check_rejects_rep_var(self):
        with pytest.raises(LevityPolymorphicBinder):
            check_binder_kind(TypeKind(RepVar("r")))

    def test_argument_check_rejects_rep_var(self):
        with pytest.raises(LevityPolymorphicArgument):
            check_argument_kind(TypeKind(RepVar("r")))

    def test_argument_check_rejects_non_value_kind(self):
        with pytest.raises(LevityPolymorphicArgument):
            check_argument_kind(ArrowKind(TYPE_LIFTED, TYPE_LIFTED))

    def test_partially_concrete_tuple_is_rejected(self):
        kind = TypeKind(TupleRep([INT_REP, RepVar("r")]))
        with pytest.raises(LevityPolymorphicBinder):
            check_binder_kind(kind)

    def test_checker_collect_mode(self):
        checker = LevityChecker(collect=True)
        assert checker.check_binder(TYPE_LIFTED, "x")
        assert not checker.check_binder(TypeKind(RepVar("r")), "y")
        assert not checker.check_argument(TypeKind(RepVar("s")), "z")
        assert not checker.ok
        assert len(checker.violations) == 2
        assert "y" in checker.report() and "z" in checker.report()

    def test_checker_raise_mode(self):
        checker = LevityChecker(collect=False)
        with pytest.raises(LevityPolymorphicBinder):
            checker.check_binder(TypeKind(RepVar("r")), "x")
