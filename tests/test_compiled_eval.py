"""The closure-compilation backend against the tree-walker (ISSUE 6).

The referee for the compiled evaluator is the existing differential
harness: the same fixed-seed corpus that gates the fuzzing PR is pushed
through ``DriverOptions(compiled=True)`` and must satisfy all five
oracles, and every program's entry expression must produce the *same
shown value* through both evaluators.  On top of that, the per-unit
codegen cache (schema-v2 side-table) is exercised for round-trips,
stale-arity invalidation and corrupt-entry regeneration, and the
fallback path (a binding the compiler skips) is shown to stay correct
via the tree-walker.
"""

import pytest

from repro.core.errors import ReproError
from repro.driver import DriverOptions, Session
from repro.driver.batch import ResultCache, codegen_cache_key
from repro.driver.session import _program_from_check
from repro.fuzz import DifferentialHarness, generate_corpus
from repro.runtime.compiler import (
    CODEGEN_VERSION,
    FallbackFunction,
    UnsupportedExpression,
    _ModuleInfo,
    generate_function_source,
)
from repro.runtime.evaluator import Evaluator, Program, ProgramFunction
from repro.runtime.values import UnboxedInt

#: The same corpus the fuzzing PR gates on (tests/test_fuzz_differential.py)
#: — bump deliberately, never implicitly.
CORPUS_SEED = 20260731
CORPUS_SIZE = 1050


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CORPUS_SEED, CORPUS_SIZE)


@pytest.fixture(scope="module")
def session():
    return Session()


# ---------------------------------------------------------------------------
# The tentpole referee: the full fixed-seed corpus, compiled
# ---------------------------------------------------------------------------


class TestCompiledCorpus:
    def test_full_corpus_compiled_zero_disagreements(self, corpus):
        """All five oracles hold with the compiled evaluator driving the
        ``run``/``reference``/``differential`` checks."""
        harness = DifferentialHarness(DriverOptions(compiled=True))
        report = harness.run_corpus(corpus)
        assert report.programs == CORPUS_SIZE
        assert report.ok, report.pretty(max_failures=3)
        # The oracles must actually engage, not silently skip:
        assert report.counters["machine_engaged"] >= CORPUS_SIZE // 10
        assert report.counters["reference_checked"] >= CORPUS_SIZE // 2

    def test_compiled_and_interpreted_values_identical(self, corpus, session):
        """Every corpus entry evaluates to the identical shown value (or
        the identical error) through both evaluators."""
        disagreements = []
        for program in corpus:
            check = session.check(program.source, program.filename)
            if not check.ok:  # pragma: no cover - corpus always checks
                continue
            interpreted = _eval_entry(check, compiled=False)
            compiled = _eval_entry(check, compiled=True)
            if interpreted != compiled:
                disagreements.append(
                    (program.filename, interpreted, compiled))
        assert not disagreements, disagreements[:3]


def _eval_entry(check, compiled):
    module = check.parsed.module
    entry = module.bindings()["main"]
    program = _program_from_check(module, check)
    evaluator = Evaluator(program, compiled=compiled)
    try:
        value = evaluator.force(evaluator.eval(entry.rhs))
    except ReproError as exc:
        return ("error", str(exc))
    return ("ok", value.show(evaluator.heap))


# ---------------------------------------------------------------------------
# Direct compiled-evaluator behaviour
# ---------------------------------------------------------------------------


UNBOXED_LOOP = """\
sumTo# :: Int# -> Int# -> Int#
sumTo# acc n = case n ==# 0# of { 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }

main :: Int#
main = sumTo# 0# 100#
"""


class TestCompiledEvaluator:
    def test_unboxed_loop_runs_flat(self, session):
        """The signature compiled win: a tail-recursive unboxed loop far
        deeper than any Python recursion budget the tree-walker gets."""
        check = session.check(UNBOXED_LOOP, "loop.lev")
        assert check.ok
        program = _program_from_check(check.parsed.module, check)
        evaluator = Evaluator(program, compiled=True)
        result = evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(100_000))
        assert evaluator.int_result(result) == 100_000 * 100_001 // 2

    def test_compiled_session_matches_interpreted(self):
        interpreted = Session().run(UNBOXED_LOOP, "loop.lev")
        compiled = Session(DriverOptions(compiled=True)).run(
            UNBOXED_LOOP, "loop.lev")
        assert interpreted.ok and compiled.ok
        assert interpreted.value == compiled.value == "5050#"
        assert interpreted.codegen_compiled is None
        assert compiled.codegen_compiled == 2
        assert "codegen: 2 function(s) compiled, 0 cached" \
            in compiled.pretty()

    def test_repl_uses_compiled_backend(self):
        repl = Session(DriverOptions(compiled=True))
        assert repl.repl_input("double x = x + x").startswith("double")
        assert repl.repl_input("double 21") == "(I# 42#)"

    def test_unsupported_binding_falls_back_to_tree_walker(self, session):
        """A binding the emitter cannot lower becomes a FallbackFunction;
        the rest of the program still compiles and runs."""
        check = session.check(UNBOXED_LOOP, "loop.lev")
        program = _program_from_check(check.parsed.module, check)

        class Opaque:  # not a surface Expr node
            pass

        weird = ProgramFunction("weird", ("x",), (False,), Opaque())
        with pytest.raises(UnsupportedExpression):
            generate_function_source(weird, _ModuleInfo({}))
        program.functions["weird"] = weird
        evaluator = Evaluator(program, compiled=True)
        backend = evaluator._compiled
        assert backend.fallback_names == ["weird"]
        assert backend.sources["weird"] is None
        assert isinstance(backend.functions["weird"], FallbackFunction)
        result = evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(10))
        assert evaluator.int_result(result) == 55

    def test_provided_none_source_is_a_cache_hit_fallback(self, session):
        """``None`` in the side-table means "known unsupported": linked as
        a fallback with no codegen attempted (still counted as a hit)."""
        check = session.check(UNBOXED_LOOP, "loop.lev")
        program = _program_from_check(check.parsed.module, check)
        evaluator = Evaluator(program, compiled=True,
                              compiled_sources={"main": None})
        backend = evaluator._compiled
        assert backend.cache_hits == 1 and backend.codegen_count == 1
        assert "main" in backend.fallback_names
        value = evaluator.force(evaluator.global_value("main"))
        assert evaluator.int_result(value) == 5050

    def test_corrupt_provided_source_is_regenerated(self, session):
        """A stale/corrupt cache entry that fails to link is silently
        re-lowered from the AST — never trusted, never fatal."""
        check = session.check(UNBOXED_LOOP, "loop.lev")
        program = _program_from_check(check.parsed.module, check)
        evaluator = Evaluator(
            program, compiled=True,
            compiled_sources={"sumTo#": "def _bind(R, G, C):\n"
                                        "    raise RuntimeError('stale')\n"})
        backend = evaluator._compiled
        assert backend.codegen_count == 2  # sumTo# regenerated + main
        assert backend.sources["sumTo#"] is not None
        result = evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(100))
        assert evaluator.int_result(result) == 5050

    def test_global_memo_invalidated_by_program_edits(self, session):
        """Satellite: `_eval_var` memoises global resolutions per
        evaluator, keyed to Program.version."""
        check = session.check("answer :: Int\nanswer = 41\n"
                              "main :: Int\nmain = answer + 1\n", "memo.lev")
        assert check.ok
        module = check.parsed.module
        program = _program_from_check(module, check)
        evaluator = Evaluator(program)
        rhs = module.bindings()["main"].rhs
        assert evaluator.int_result(evaluator.force(evaluator.eval(rhs))) \
            == 42
        assert "answer" in evaluator._global_cache

        edited = session.check("answer :: Int\nanswer = 100\n", "memo.lev")
        version = program.version
        program.add_function(edited.parsed.module.bindings()["answer"])
        assert program.version == version + 1
        assert evaluator.int_result(evaluator.force(evaluator.eval(rhs))) \
            == 101


# ---------------------------------------------------------------------------
# The per-unit codegen cache
# ---------------------------------------------------------------------------


CACHED_SOURCE = """\
inc :: Int# -> Int#
inc x = x +# 1#

twice :: Int# -> Int#
twice x = inc (inc x)

main :: Int#
main = twice 40#
"""


class TestCodegenCache:
    def test_round_trip_skips_codegen(self, tmp_path):
        path = str(tmp_path / "cache.json")
        options = DriverOptions(compiled=True)
        cold = Session(options).run(CACHED_SOURCE, "cache.lev", cache=path)
        assert cold.ok and cold.value == "42#"
        assert cold.codegen_compiled == 3 and cold.codegen_cached == 0

        cache = ResultCache(path)
        warm = Session(options).run(CACHED_SOURCE, "cache.lev", cache=cache)
        assert warm.ok and warm.value == cold.value
        assert warm.codegen_compiled == 0, \
            "warm run re-generated code the cache should have served"
        assert warm.codegen_cached == 3
        assert cache.codegen_hits == 3
        assert "codegen: 0 function(s) compiled, 3 cached" in warm.pretty()

    def test_keys_are_versioned(self, tmp_path):
        """Codegen entries live under a ``codegenN:`` prefix in the same
        schema-v2 document as check results — bumping CODEGEN_VERSION
        orphans them without touching check entries."""
        path = str(tmp_path / "cache.json")
        Session(DriverOptions(compiled=True)).run(CACHED_SOURCE,
                                                  "cache.lev", cache=path)
        cache = ResultCache(path)
        prefix = f"codegen{CODEGEN_VERSION}:"
        assert codegen_cache_key("k").startswith(prefix)
        stored = [key for key in cache.entries if key.startswith(prefix)]
        assert len(stored) == 3

    def test_interpreted_runs_ignore_the_codegen_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        result = Session().run(CACHED_SOURCE, "cache.lev", cache=path)
        assert result.ok and result.codegen_compiled is None

    def test_stale_dep_arity_invalidates_the_entry(self, tmp_path):
        """Compiled call sites bake in each callee's *syntactic arity*,
        which the scheme does not determine: ``f x y = ...`` vs
        ``f x = \\y -> ...`` share a scheme but not a calling convention.
        An entry whose recorded dep arities changed must be re-lowered."""
        v1 = ("f :: Int -> Int -> Int\nf x y = x + y\n"
              "g :: Int -> Int\ng x = f x 1\n"
              "main :: Int\nmain = g 41\n")
        v2 = ("f :: Int -> Int -> Int\nf x = \\y -> x + y\n"
              "g :: Int -> Int\ng x = f x 1\n"
              "main :: Int\nmain = g 41\n")
        path = str(tmp_path / "cache.json")
        options = DriverOptions(compiled=True)
        first = Session(options).run(v1, "arity.lev", cache=path)
        assert first.ok and first.value == "(I# 42#)"
        assert first.codegen_compiled == 3

        second = Session(options).run(v2, "arity.lev", cache=path)
        assert second.ok and second.value == "(I# 42#)", \
            "stale baked-in arity corrupted the call to f"
        # f's unit source changed (cache miss) and g's entry recorded
        # f@arity-2, so both re-lower; main depends only on g, whose
        # scheme *and* arity are unchanged — still a hit.
        assert second.codegen_compiled == 2
        assert second.codegen_cached == 1
