"""Every way out of the compilable L fragment gets a structured diagnostic.

``repro.driver.lower`` is deliberately partial — the Section 5.1
restrictions make the fragment compilable, and everything outside it must
be *reported*, not crashed on.  Two layers are pinned here:

* the raw :class:`~repro.driver.lower.LoweringError` (a
  :class:`~repro.core.errors.CompilationError`) with a message naming the
  offending construct, for every unsupported construct;
* the driver surface: ``Session.compile`` turns the error into a
  ``compile``-stage *error* diagnostic carrying the binding's span, while
  ``Session.run`` degrades to a ``compile``-stage *note* (the program still
  runs on the evaluator; it just skips the machine cross-check).
"""

import pytest

from repro.core.errors import CompilationError
from repro.driver import Session
from repro.driver.lower import LoweringError, lower_entry, lower_type
from repro.frontend import parse_module
from repro.infer import infer_module
from repro.surface.types import (
    BOOL_TY,
    DOUBLE_HASH_TY,
    STRING_TY,
    UnboxedTupleTy,
)


@pytest.fixture(scope="module")
def session():
    return Session()


def _lowering_error(source, entry="main"):
    parsed = parse_module(source)
    result = infer_module(parsed.module)
    with pytest.raises(LoweringError) as exc_info:
        lower_entry(parsed.module, result.schemes, entry)
    return str(exc_info.value)


class TestLoweringErrorMessages:
    """The raw errors name the construct that left the fragment."""

    def test_recursion(self):
        message = _lowering_error(
            "main :: Int#\nmain = main\n")
        assert "recursive" in message
        assert "no fixpoint" in message

    def test_recursive_helper_called_by_entry(self):
        # The helper is skipped (outside the fragment), so the entry's
        # reference to it is the variable error, not a crash.
        message = _lowering_error(
            "loop :: Int# -> Int#\n"
            "loop n = loop n\n"
            "main :: Int#\n"
            "main = loop 1#\n")
        assert "'loop'" in message

    def test_primop(self):
        message = _lowering_error(
            "main :: Int#\nmain = 1# +# 2#\n")
        assert "outside the L fragment" in message

    def test_levity_polymorphic_scheme(self):
        message = _lowering_error(
            "main :: forall (r :: Rep) (a :: TYPE r). String -> a\n"
            "main s = error s\n")
        assert "polymorphic" in message

    def test_implicitly_quantified_scheme(self):
        message = _lowering_error(
            "main :: a -> Int#\nmain x = 3#\n")
        assert "polymorphic" in message

    def test_unannotated_lambda(self):
        message = _lowering_error(
            "main :: Int# -> Int#\nmain = \\x -> x\n")
        assert "needs a type annotation" in message

    def test_unannotated_let(self):
        message = _lowering_error(
            "main :: Int#\nmain = let x = 1# in x\n")
        assert "needs a type signature" in message

    def test_non_unboxing_case(self):
        message = _lowering_error(
            "main :: Int#\nmain = case 1# of { 1# -> 2#; _ -> 3# }\n")
        assert "I# x -> rhs" in message

    def test_if_expression(self):
        message = _lowering_error(
            "main :: Int#\nmain = if True then 1# else 2#\n")
        assert "outside the L fragment" in message

    def test_free_variable(self):
        # `negate` is prelude, not a fragment binding.
        message = _lowering_error(
            "main :: Int\nmain = negate 3\n")
        assert "'negate'" in message

    def test_missing_entry(self):
        message = _lowering_error(
            "helper :: Int#\nhelper = 1#\n", entry="main")
        assert "no binding named 'main'" in message

    @pytest.mark.parametrize("bad_type", [
        DOUBLE_HASH_TY, BOOL_TY, STRING_TY,
        UnboxedTupleTy((DOUBLE_HASH_TY,)),
    ])
    def test_types_outside_the_fragment(self, bad_type):
        with pytest.raises(LoweringError) as exc_info:
            lower_type(bad_type)
        assert "outside the L fragment" in str(exc_info.value)

    def test_lowering_error_is_a_compilation_error(self):
        # Callers catching the documented hierarchy keep working.
        assert issubclass(LoweringError, CompilationError)


class TestDriverSurface:
    """The pipeline turns LoweringError into diagnostics, never a crash."""

    REJECTED = {
        "recursion": "main :: Int#\nmain = main\n",
        "primop": "main :: Int#\nmain = 1# +# 2#\n",
        "open_levity": ("main :: forall (r :: Rep) (a :: TYPE r)."
                        " String -> a\n"
                        "main s = error s\n"),
        "unannotated_lambda": "main :: Int# -> Int#\nmain = \\x -> x\n",
        "bad_case": "main :: Int#\n"
                    "main = case 1# of { 1# -> 2#; _ -> 3# }\n",
    }

    @pytest.mark.parametrize("name", sorted(REJECTED))
    def test_compile_reports_a_compile_stage_error(self, session, name):
        result = session.compile(self.REJECTED[name], f"{name}.lev")
        assert not result.ok
        compile_errors = [d for d in result.check.diagnostics
                          if d.stage == "compile" and d.severity == "error"]
        assert compile_errors, result.check.pretty()
        assert compile_errors[0].binding == "main"
        assert compile_errors[0].span is not None

    @pytest.mark.parametrize("name", ["primop", "bad_case"])
    def test_run_degrades_to_a_note_and_still_evaluates(self, session, name):
        result = session.run(self.REJECTED[name], f"{name}.lev")
        assert result.ok, result.check.pretty()
        assert result.machine_value is None
        notes = [d for d in result.check.diagnostics
                 if d.stage == "compile" and d.severity == "note"]
        assert notes and "not cross-checked" in notes[0].message

    def test_run_of_terminating_recursion_notes_the_skip(self, session):
        result = session.run(
            "count :: Int# -> Int#\n"
            "count n = case n <=# 0# of "
            "{ 1# -> 0#; _ -> 1# +# count (n -# 1#) }\n"
            "main :: Int#\n"
            "main = count 3#\n", "count.lev")
        assert result.ok and result.value == "3#"
        assert result.machine_value is None
        notes = [d for d in result.check.diagnostics
                 if d.stage == "compile" and d.severity == "note"]
        assert notes and "not cross-checked" in notes[0].message

    def test_run_of_levity_polymorphic_entry_is_skipped_not_crashed(
            self, session):
        result = session.run(self.REJECTED["open_levity"],
                             "open_levity.lev")
        # The entry takes a parameter, so run refuses it with a structured
        # run-stage error (not a traceback).
        assert not result.ok
        assert any(d.stage == "run" for d in result.check.errors)

    def test_cli_style_compile_of_fragment_program_still_works(self, session):
        result = session.compile(
            "unbox :: Int -> Int#\n"
            "unbox b = case b of { I# x -> x }\n"
            "main :: Int#\n"
            "main = unbox (I# 9#)\n")
        assert result.ok, result.check.pretty()
        assert result.machine_value == "9"
