"""Every way out of the compilable L fragment gets a structured diagnostic.

``repro.driver.lower`` is deliberately partial — the Section 5.1
restrictions make the fragment compilable, and everything outside it must
be *reported*, not crashed on.  Since the whole-language extension the
fragment covers recursion (via ``fix``), the ``Int#`` primops and literal
cases, so rejection is now *type-driven*: only programs using types other
than ``Int``/``Int#``/arrows (or genuinely un-lowerable shapes, like
recursion at the unboxed type itself) are skipped.  Two layers are pinned
here:

* the raw :class:`~repro.driver.lower.LoweringError` (a
  :class:`~repro.core.errors.CompilationError`) with a message naming the
  offending construct, for every unsupported construct;
* the driver surface: ``Session.compile`` turns the error into a
  ``compile``-stage *error* diagnostic carrying the binding's span, while
  ``Session.run`` degrades to a ``compile``-stage *note* (the program still
  runs on the evaluator; it just skips the machine cross-check).
"""

import pytest

from repro.core.errors import CompilationError
from repro.driver import Session
from repro.driver.lower import LoweringError, lower_entry, lower_type
from repro.frontend import parse_module
from repro.infer import infer_module
from repro.surface.types import (
    BOOL_TY,
    DOUBLE_HASH_TY,
    STRING_TY,
    UnboxedTupleTy,
)


@pytest.fixture(scope="module")
def session():
    return Session()


def _lowering_error(source, entry="main"):
    parsed = parse_module(source)
    result = infer_module(parsed.module)
    with pytest.raises(LoweringError) as exc_info:
        lower_entry(parsed.module, result.schemes, entry)
    return str(exc_info.value)


def _lowered(source, entry="main"):
    parsed = parse_module(source)
    result = infer_module(parsed.module)
    return lower_entry(parsed.module, result.schemes, entry)


class TestLoweringErrorMessages:
    """The raw errors name the construct that left the fragment."""

    def test_recursion_at_unboxed_type(self):
        # fix needs a pointer-kinded binder; a recursive Int# binding has
        # no thunk to tie the knot through.
        message = _lowering_error(
            "main :: Int#\nmain = main\n")
        assert "recursive" in message
        assert "no fixpoint" in message

    def test_reference_to_a_skipped_helper(self):
        # The helper is skipped (its body leaves the fragment), so the
        # entry's reference to it is the variable error, not a crash.
        message = _lowering_error(
            "helper :: Int# -> Int#\n"
            "helper n = if True then n else 0#\n"
            "main :: Int#\n"
            "main = helper 1#\n")
        assert "'helper'" in message

    def test_levity_polymorphic_scheme(self):
        message = _lowering_error(
            "main :: forall (r :: Rep) (a :: TYPE r). String -> a\n"
            "main s = error s\n")
        assert "polymorphic" in message

    def test_implicitly_quantified_scheme(self):
        message = _lowering_error(
            "main :: a -> Int#\nmain x = 3#\n")
        assert "polymorphic" in message

    def test_unannotated_lambda(self):
        message = _lowering_error(
            "main :: Int# -> Int#\nmain = \\x -> x\n")
        assert "needs a type annotation" in message

    def test_unannotated_let(self):
        message = _lowering_error(
            "main :: Int#\nmain = let x = 1# in x\n")
        assert "needs a type signature" in message

    def test_literal_case_without_wildcard(self):
        message = _lowering_error(
            "main :: Int#\nmain = case 1# of { 1# -> 2# }\n")
        assert "wildcard" in message

    def test_constructor_case_outside_the_fragment(self):
        message = _lowering_error(
            "main :: Int#\n"
            "main = case True of { True -> 1#; _ -> 2# }\n")
        assert "in the L fragment" in message

    def test_if_expression(self):
        message = _lowering_error(
            "main :: Int#\nmain = if True then 1# else 2#\n")
        assert "outside the L fragment" in message

    def test_free_variable(self):
        # `negate` is prelude, not a fragment binding.
        message = _lowering_error(
            "main :: Int\nmain = negate 3\n")
        assert "'negate'" in message

    def test_missing_entry(self):
        message = _lowering_error(
            "helper :: Int#\nhelper = 1#\n", entry="main")
        assert "no binding named 'main'" in message

    @pytest.mark.parametrize("bad_type", [
        DOUBLE_HASH_TY, BOOL_TY, STRING_TY,
        UnboxedTupleTy((DOUBLE_HASH_TY,)),
    ])
    def test_types_outside_the_fragment(self, bad_type):
        with pytest.raises(LoweringError) as exc_info:
            lower_type(bad_type)
        assert "outside the L fragment" in str(exc_info.value)

    def test_lowering_error_is_a_compilation_error(self):
        # Callers catching the documented hierarchy keep working.
        assert issubclass(LoweringError, CompilationError)


class TestWholeLanguageLowering:
    """Recursion, primops and literal cases now lower instead of erroring."""

    def test_recursion_lowers_via_fix(self):
        term = _lowered(
            "loop :: Int# -> Int#\n"
            "loop n = case n <=# 0# of { 1# -> 0#; _ -> loop (n -# 1#) }\n"
            "main :: Int#\n"
            "main = loop 3#\n")
        assert "fix loop" in term.pretty()

    def test_saturated_primop_lowers(self):
        term = _lowered("main :: Int#\nmain = 1# +# 2#\n")
        assert term.pretty() == "+#(1, 2)"

    def test_undersaturated_primop_eta_expands(self):
        term = _lowered(
            "plus :: Int# -> Int# -> Int#\n"
            "plus = (+#)\n"
            "main :: Int#\n"
            "main = plus 1# 2#\n")
        assert "+#(" in term.pretty()

    def test_literal_case_lowers(self):
        term = _lowered(
            "main :: Int#\nmain = case 1# of { 1# -> 2#; _ -> 3# }\n")
        assert "case 1 of { 1 -> 2; _ -> 3 }" == term.pretty()

    def test_boxed_literal_case_unboxes_first(self):
        term = _lowered(
            "main :: Int#\nmain = case 5 of { 5 -> 1#; _ -> 0# }\n")
        pretty = term.pretty()
        assert "I#[" in pretty and "{ 5 -> 1; _ -> 0 }" in pretty

    def test_parameter_shadowing_the_binding_is_legal(self):
        # Once recursion is admitted the binding's own name may be
        # shadowed by a parameter: scoping resolves it, no error.
        term = _lowered(
            "f :: Int# -> Int#\n"
            "f f = f\n"
            "main :: Int#\n"
            "main = f 7#\n")
        from repro.lang_l import Context, evaluate
        assert evaluate(term).value.pretty() == "7"


class TestDriverSurface:
    """The pipeline turns LoweringError into diagnostics, never a crash."""

    REJECTED = {
        "unboxed_recursion": "main :: Int#\nmain = main\n",
        "open_levity": ("main :: forall (r :: Rep) (a :: TYPE r)."
                        " String -> a\n"
                        "main s = error s\n"),
        "unannotated_lambda": "main :: Int# -> Int#\nmain = \\x -> x\n",
        "if_on_bool": "main :: Int#\nmain = if True then 1# else 2#\n",
    }

    @pytest.mark.parametrize("name", sorted(REJECTED))
    def test_compile_reports_a_compile_stage_error(self, session, name):
        result = session.compile(self.REJECTED[name], f"{name}.lev")
        assert not result.ok
        compile_errors = [d for d in result.check.diagnostics
                          if d.stage == "compile" and d.severity == "error"]
        assert compile_errors, result.check.pretty()
        assert compile_errors[0].binding == "main"
        assert compile_errors[0].span is not None

    def test_run_degrades_to_a_note_and_still_evaluates(self, session):
        result = session.run(self.REJECTED["if_on_bool"], "if_on_bool.lev")
        assert result.ok, result.check.pretty()
        assert result.machine_value is None
        notes = [d for d in result.check.diagnostics
                 if d.stage == "compile" and d.severity == "note"]
        assert notes and "not cross-checked" in notes[0].message

    def test_run_of_terminating_recursion_cross_checks_the_machine(
            self, session):
        result = session.run(
            "count :: Int# -> Int#\n"
            "count n = case n <=# 0# of "
            "{ 1# -> 0#; _ -> 1# +# count (n -# 1#) }\n"
            "main :: Int#\n"
            "main = count 3#\n", "count.lev")
        assert result.ok and result.value == "3#"
        assert result.machine_value == "3"
        assert result.machine_agrees is True

    def test_run_of_levity_polymorphic_entry_is_skipped_not_crashed(
            self, session):
        result = session.run(self.REJECTED["open_levity"],
                             "open_levity.lev")
        # The entry takes a parameter, so run refuses it with a structured
        # run-stage error (not a traceback).
        assert not result.ok
        assert any(d.stage == "run" for d in result.check.errors)

    def test_cli_style_compile_of_fragment_program_still_works(self, session):
        result = session.compile(
            "unbox :: Int -> Int#\n"
            "unbox b = case b of { I# x -> x }\n"
            "main :: Int#\n"
            "main = unbox (I# 9#)\n")
        assert result.ok, result.check.pretty()
        assert result.machine_value == "9"
