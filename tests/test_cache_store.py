"""Tests for the sharded cache store (``repro.driver.store``).

Covers the properties the v4 layout promises:

* key→table/shard assignment is total, stable and verifiable;
* entries round-trip through shard files byte-for-byte (hypothesis);
* per-shard dirty tracking — no-op saves write nothing, a single store
  writes exactly one shard;
* two *processes* racing on one cache directory lose no entries;
* the hot tier serves repeat reads without disk and never leaks unsaved
  writes between stores;
* legacy monolithic documents migrate to a cold directory, once;
* ``canonical_scheme`` memoisation renders each scheme object once;
* the ``python -m repro cache`` maintenance actions.
"""

import json
import multiprocessing
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.driver import DriverOptions, HotTier, ResultCache, Session
from repro.driver.batch import CheckStats, canonical_scheme
from repro.driver.store import (
    CACHE_SCHEMA,
    SHARD_COUNT,
    ShardStore,
    shard_of,
    table_of,
)
from repro.telemetry import REGISTRY


MODULE = """\
base :: Int# -> Int#
base x = x +# 1#

mid = base 1#

top = mid +# 2#
"""


def entry_keys(root):
    return set(ShardStore(root).load_all())


class TestKeyAssignment:
    def test_tables_by_prefix(self):
        hex64 = "ab" * 32
        assert table_of(hex64) == "unit"
        assert table_of(f"pfile:{hex64}") == "pfile"
        assert table_of(f"outline:{hex64}") == "outline"
        assert table_of(f"exports:{hex64}") == "exports"
        assert table_of(f"exports:pfile:{hex64}") == "exports"
        assert table_of(f"codegen1:{hex64}") == "codegen"
        assert table_of(f"codegen12:{hex64}") == "codegen"
        assert table_of(f"codegenx:{hex64}") == "misc"
        assert table_of(f"future:{hex64}") == "misc"

    def test_shard_of_uses_the_trailing_digest(self):
        hex64 = "7f" + "0" * 62
        assert shard_of(hex64) == 0x7F
        assert shard_of(f"pfile:{hex64}") == 0x7F
        assert shard_of(f"exports:pfile:{hex64}") == 0x7F
        assert shard_of(f"codegen1:{hex64}") == 0x7F

    @given(st.text(min_size=1, max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_assignment_is_total_and_stable(self, key):
        # Any key — even junk — lands in exactly one (table, shard), and
        # the assignment is a pure function of the key.
        table = table_of(key)
        index = shard_of(key)
        assert table in ("unit", "pfile", "outline", "exports", "codegen",
                         "misc")
        assert 0 <= index < SHARD_COUNT
        assert (table_of(key), shard_of(key)) == (table, index)


# JSON-able payloads: the value space cache entries live in.
_json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8)


class TestRoundTrip:
    @given(st.dictionaries(
        st.from_regex(r"\A(pfile:|outline:|codegen1:|)[0-9a-f]{64}\Z"),
        st.dictionaries(st.text(max_size=8), _json_values, max_size=4),
        min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_store_encode_decode_round_trips(self, entries):
        import tempfile

        with tempfile.TemporaryDirectory() as base:
            root = os.path.join(base, "store")
            store = ShardStore(root)
            for key, payload in entries.items():
                store.put(key, payload)
            store.save()
            # A fresh store sees exactly what was written, per key and in
            # aggregate, and every shard file self-verifies.
            fresh = ShardStore(root)
            for key, payload in entries.items():
                assert fresh.get(key) == payload
            assert fresh.load_all() == entries
            assert ShardStore(root).verify() == []

    def test_save_returns_written_and_merges_concurrents(self, tmp_path):
        root = str(tmp_path / "c")
        one = ShardStore(root)
        two = ShardStore(root)
        key_a = "aa" + "0" * 62
        key_b = "bb" + "0" * 62
        one.put(key_a, {"v": 1})
        two.put(key_b, {"v": 2})
        assert one.save() == 1
        assert two.save() == 1  # merged, not clobbered
        assert ShardStore(root).load_all() == {key_a: {"v": 1},
                                               key_b: {"v": 2}}


class TestDirtyTracking:
    def test_identical_put_is_free(self, tmp_path):
        root = str(tmp_path / "c")
        store = ShardStore(root)
        key = "cc" + "0" * 62
        assert store.put(key, {"v": 1}) is True
        assert store.save() == 1
        warm = ShardStore(root)
        assert warm.put(key, {"v": 1}) is False
        assert warm.save() == 0

    def test_single_store_writes_a_single_shard(self, tmp_path):
        root = str(tmp_path / "c")
        seed = ShardStore(root)
        for byte in range(8):
            seed.put(f"{byte:02x}" + "0" * 62, {"v": byte})
        seed.save()
        editor = ShardStore(root)
        editor.put("05" + "0" * 62, {"v": "edited"})
        assert editor.save() == 1
        assert editor.shards_written == 1

    def test_warm_noop_reads_only_probed_shards(self, tmp_path):
        # The O(touched) property at the checking level: a warm no-op
        # check against a cache padded with entries in many shards reads
        # only the shard(s) it probes.
        root = str(tmp_path / "c")
        Session().check_many([("m.lev", MODULE)], cache=root)
        pad = ShardStore(root)
        for byte in range(64):
            pad.put(f"{byte:02x}" + "f" * 62, {"pad": byte})
        pad.save()
        warm = ResultCache(root)
        stats = CheckStats()
        Session().check_many([("m.lev", MODULE)], cache=warm, stats=stats)
        assert stats.file_hits == 1
        assert warm.shards_read == 1     # the file-level entry's shard
        assert warm.shards_written == 0


def _writer_main(root, tag, count, barrier):
    store = ShardStore(root)
    for i in range(count):
        payload_key = f"{i % 16:x}{tag}" + "0" * 56
        key = payload_key[:64].ljust(64, "0")
        store.put(key, {"writer": tag, "i": i})
    barrier.wait()  # maximise save overlap
    store.save()


class TestConcurrency:
    def test_two_processes_lose_nothing(self, tmp_path):
        # Two real processes, one cache directory, saves released
        # simultaneously: the union of both write sets must survive.
        root = str(tmp_path / "shared")
        context = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        barrier = context.Barrier(2)
        writers = [
            context.Process(target=_writer_main,
                            args=(root, tag, 64, barrier))
            for tag in ("a", "b")]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(60)
            assert writer.exitcode == 0
        merged = ShardStore(root).load_all()
        for tag in ("a", "b"):
            tagged = [key for key, payload in merged.items()
                      if payload.get("writer") == tag]
            assert len(tagged) == 16  # 64 writes over 16 distinct keys
        assert ShardStore(root).verify() == []

    def test_two_check_processes_share_one_cache_dir(self, tmp_path):
        # The CLI-level stress from the issue: two `--jobs` runs sharing
        # one --cache directory; both runs' entries survive.
        root = str(tmp_path / "cli-cache")
        corpora = []
        for tag in ("x", "y"):
            corpus = tmp_path / f"corpus_{tag}"
            corpus.mkdir()
            for i in range(4):
                (corpus / f"{tag}{i}.lev").write_text(
                    f"f{tag}{i} :: Int# -> Int#\nf{tag}{i} n = n +# {i}#\n")
            corpora.append(corpus)
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        processes = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "check", "--jobs", "2",
                 "--cache", root]
                + sorted(str(p) for p in corpus.glob("*.lev")),
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            for corpus in corpora]
        for process in processes:
            assert process.wait(timeout=120) == 0
        keys = entry_keys(root)
        # 4 unit entries + 4 file entries per run, all distinct sources.
        assert len(keys) == 16
        # And both runs replay warm out of the shared cache.
        stats = CheckStats()
        Session().check_many(
            [(f"{tag}{i}.lev",
              f"f{tag}{i} :: Int# -> Int#\nf{tag}{i} n = n +# {i}#\n")
             for tag in ("x", "y") for i in range(4)],
            cache=root, stats=stats)
        assert stats.checked == 0


class TestHotTier:
    def test_repeat_reads_skip_disk(self, tmp_path):
        root = str(tmp_path / "c")
        seed = ShardStore(root)
        key = "dd" + "0" * 62
        seed.put(key, {"v": 1})
        seed.save()
        hot = HotTier()
        first = ShardStore(root, hot=hot)
        assert first.get(key) == {"v": 1}
        assert first.shards_read == 1
        second = ShardStore(root, hot=hot)
        assert second.get(key) == {"v": 1}
        assert second.shards_read == 0  # served from the tier
        assert hot.hits == 1

    def test_unsaved_writes_do_not_leak_through_the_tier(self, tmp_path):
        root = str(tmp_path / "c")
        hot = HotTier()
        key = "ee" + "0" * 62
        writer = ShardStore(root, hot=hot)
        writer.put(key, {"v": "unsaved"})
        reader = ShardStore(root, hot=hot)
        assert reader.get(key) is None  # the tier reflects disk only
        writer.save()
        late = ShardStore(root, hot=hot)
        assert late.get(key) == {"v": "unsaved"}
        assert late.shards_read == 0    # save refreshed the tier

    def test_lru_bound_holds(self):
        hot = HotTier(max_shards=2)
        for index in range(4):
            hot.put(("r", "unit", index), {}, {})
        assert len(hot) == 2

    def test_session_shares_one_tier_across_calls(self, tmp_path):
        root = str(tmp_path / "c")
        session = Session()
        session.check_many([("m.lev", MODULE)], cache=root)
        tier = session.store_hot_tier()
        baseline = tier.hits
        stats = CheckStats()
        session.check_many([("m.lev", MODULE)], cache=root, stats=stats)
        assert stats.file_hits == 1
        assert tier.hits > baseline  # the warm call read shards from memory


class TestMigration:
    def test_monolithic_file_migrates_once(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 3, "entries": {"junk": {"members": []}}},
                      handle)
        before = REGISTRY.counter("cache.store.migrations").value
        store = ShardStore(path)
        assert store.migrated
        assert not os.path.exists(path)
        assert REGISTRY.counter("cache.store.migrations").value == before + 1
        # Idempotent: the next open finds no file and migrates nothing.
        assert not ShardStore(path).migrated

    def test_corrupt_file_takes_the_same_path(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        results = Session().check_many([("m.lev", MODULE)], cache=path)
        assert results[0].ok
        assert os.path.isdir(path)
        assert entry_keys(path)


class TestGcAndCompact:
    def test_gc_drops_only_old_entries(self, tmp_path):
        import time

        root = str(tmp_path / "c")
        store = ShardStore(root)
        old_key = "aa" + "0" * 62
        new_key = "bb" + "0" * 62
        store.put(old_key, {"v": "old"})
        store.put(new_key, {"v": "new"})
        store.save()
        # Backdate one entry's stamp by rewriting its shard document.
        shard_path = os.path.join(root, "unit", "aa.json")
        with open(shard_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["stamps"][old_key] = time.time() - 100 * 24 * 3600
        with open(shard_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        kept, dropped = ShardStore(root).gc(30 * 24 * 3600)
        assert (kept, dropped) == (1, 1)
        survivors = ShardStore(root).load_all()
        assert set(survivors) == {new_key}
        # The emptied shard file is gone entirely.
        assert not os.path.exists(shard_path)

    def test_recent_hit_keeps_an_entry_alive(self, tmp_path):
        import time

        root = str(tmp_path / "c")
        store = ShardStore(root)
        key = "cc" + "0" * 62
        store.put(key, {"v": 1})
        store.save()
        shard_path = os.path.join(root, "unit", "cc.json")
        with open(shard_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["stamps"][key] = time.time() - 100 * 24 * 3600
        with open(shard_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        # A read refreshes the stale stamp at save time...
        reader = ShardStore(root)
        assert reader.get(key) == {"v": 1}
        assert reader.save() == 1   # the refresh dirtied the shard
        # ...so a subsequent age-bounded gc keeps the entry.
        assert ShardStore(root).gc(30 * 24 * 3600) == (1, 0)

    def test_compact_preserves_entries(self, tmp_path):
        root = str(tmp_path / "c")
        Session().check_many([("m.lev", MODULE)], cache=root)
        before = ShardStore(root).load_all()
        ShardStore(root).compact()
        assert ShardStore(root).load_all() == before
        assert ShardStore(root).verify() == []


class TestVerify:
    def test_misplaced_entry_is_reported(self, tmp_path):
        root = str(tmp_path / "c")
        store = ShardStore(root)
        store.put("aa" + "0" * 62, {"v": 1})
        store.save()
        os.rename(os.path.join(root, "unit", "aa.json"),
                  os.path.join(root, "unit", "bb.json"))
        problems = ShardStore(root).verify()
        assert len(problems) == 1
        assert "belongs in" in problems[0]

    def test_wrong_schema_is_reported(self, tmp_path):
        root = str(tmp_path / "c")
        os.makedirs(os.path.join(root, "unit"))
        with open(os.path.join(root, "unit", "00.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"schema": CACHE_SCHEMA + 1, "entries": {}}, handle)
        problems = ShardStore(root).verify()
        assert len(problems) == 1
        assert "schema" in problems[0]


class TestSchemeRenderMemo:
    def test_each_scheme_object_renders_once(self):
        check = Session().check(MODULE, "m.lev")
        scheme = next(b.scheme for b in check.bindings
                      if b.scheme is not None)
        renders = REGISTRY.counter("solver.scheme_renders")
        hits = REGISTRY.counter("solver.scheme_render_hits")
        base_renders, base_hits = renders.value, hits.value
        first = canonical_scheme(scheme)
        assert renders.value == base_renders + 1
        for _ in range(3):
            assert canonical_scheme(scheme) == first
        assert renders.value == base_renders + 4
        assert hits.value >= base_hits + 3

    def test_memo_hits_on_repeated_codegen_key_derivation(self, tmp_path):
        # Re-running a retained CheckResult re-derives codegen keys from
        # the same scheme objects; the memo turns those re-renders into
        # hits (the REPL and the benches hold results exactly this way).
        session = Session(DriverOptions(compiled=True))
        check = session.check(MODULE, "m.lev")
        renders = REGISTRY.counter("solver.scheme_renders")
        hits = REGISTRY.counter("solver.scheme_render_hits")
        cache = str(tmp_path / "c")
        base_renders, base_hits = renders.value, hits.value
        session.run_from_check(check, entry="top", cache=cache)
        cold_renders = renders.value - base_renders
        assert cold_renders > 0
        assert hits.value == base_hits
        session.run_from_check(check, entry="top", cache=cache)
        assert hits.value - base_hits == cold_renders  # every render hits

    def test_memoised_scheme_survives_pickle(self):
        import pickle

        check = Session().check(MODULE, "m.lev")
        scheme = next(b.scheme for b in check.bindings
                      if b.scheme is not None)
        rendered = canonical_scheme(scheme)   # installs the memo
        clone = pickle.loads(pickle.dumps(scheme))
        assert canonical_scheme(clone) == rendered


class TestCacheCli:
    def seeded(self, tmp_path):
        root = str(tmp_path / "c")
        Session().check_many([("m.lev", MODULE)], cache=root)
        return root

    def test_stats_json(self, tmp_path, capsys):
        root = self.seeded(tmp_path)
        assert main(["cache", "stats", "--json", root]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == CACHE_SCHEMA
        assert document["entries"] == 4  # 3 units + 1 file entry
        assert document["tables"]["unit"]["shards"] >= 1

    def test_verify_ok_and_failure(self, tmp_path, capsys):
        root = self.seeded(tmp_path)
        assert main(["cache", "verify", root]) == 0
        assert "ok" in capsys.readouterr().out
        shard = next(os.path.join(root, "unit", name)
                     for name in sorted(os.listdir(
                         os.path.join(root, "unit"))))
        with open(shard, "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        assert main(["cache", "verify", root]) == 1
        assert "unreadable" in capsys.readouterr().out

    def test_gc_and_compact(self, tmp_path, capsys):
        root = self.seeded(tmp_path)
        assert main(["cache", "gc", "--max-age", "30d", "--json",
                     root]) == 0
        assert json.loads(capsys.readouterr().out) == {"kept": 4,
                                                       "dropped": 0}
        assert main(["cache", "compact", root]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", root]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 4

    def test_gc_requires_max_age(self, tmp_path, capsys):
        root = self.seeded(tmp_path)
        assert main(["cache", "gc", root]) == 2
        assert "--max-age" in capsys.readouterr().err

    def test_missing_directory_is_a_usage_error(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "absent")]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_legacy_file_is_explained(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        path.write_text("{\"schema\": 3, \"entries\": {}}")
        assert main(["cache", "stats", str(path)]) == 2
        assert "legacy monolithic" in capsys.readouterr().err
