"""Tests for the binding-level dependency planner (repro.driver.depgraph)
and the unit-granularity behaviour of the pipeline that rides it."""

from repro.driver import Session, build_plan
from repro.driver.depgraph import decl_references
from repro.frontend import parse_module


def plan_of(source):
    return build_plan(parse_module(source, "plan.lev"))


CHAIN = """\
c :: Int#
c = b +# 1#

b = a +# 1#

a :: Int#
a = 1#
"""


class TestPlanning:
    def test_units_come_out_in_dependency_order(self):
        plan = plan_of(CHAIN)
        order = [unit.names for unit in plan.units]
        assert order == [("a",), ("b",), ("c",)]
        by_name = {unit.names[0]: unit for unit in plan.units}
        assert by_name["c"].deps == ("b",)
        assert by_name["b"].deps == ("a",)
        assert by_name["a"].deps == ()

    def test_references_exclude_parameters(self):
        plan = plan_of("f :: Int# -> Int#\nf x = x +# g 1#\ng y = y\n")
        module = plan.parsed.module
        f_bind = module.bindings()["f"]
        assert "x" not in decl_references(f_bind)
        assert "g" in decl_references(f_bind)

    def test_self_recursion_stays_a_singleton_unit(self):
        plan = plan_of("loop :: Int# -> Int#\n"
                       "loop n = case n of { 0# -> 0#; _ -> loop (n -# 1#) }\n")
        [unit] = plan.units
        assert unit.names == ("loop",)
        assert not unit.is_group
        assert unit.deps == ()

    def test_mutual_recursion_condenses_into_one_scc(self):
        plan = plan_of(
            "isEven :: Int# -> Bool\n"
            "isEven n = case n of { 0# -> True; _ -> isOdd (n -# 1#) }\n"
            "isOdd :: Int# -> Bool\n"
            "isOdd n = case n of { 0# -> False; _ -> isEven (n -# 1#) }\n"
            "user = isEven 4#\n")
        groups = [unit.names for unit in plan.units]
        assert ("isEven", "isOdd") in groups
        [group] = [unit for unit in plan.units if unit.is_group]
        assert group.deps == ()
        [user] = [unit for unit in plan.units if unit.names == ("user",)]
        assert user.deps == ("isEven",)
        assert plan.units.index(group) < plan.units.index(user)

    def test_segments_slice_the_exact_declaration_lines(self):
        plan = plan_of(CHAIN)
        by_name = {unit.names[0]: unit for unit in plan.units}
        # 'c' owns its signature and its binding (two segments).
        assert [segment.text for segment in by_name["c"].segments] == \
            ["c :: Int#\n", "c = b +# 1#\n"]
        assert by_name["b"].source == "b = a +# 1#\n"
        assert by_name["a"].source == "a :: Int#\na = 1#\n"

    def test_last_definition_wins_for_references(self):
        plan = plan_of("v = 1#\nuser = v\nv = 2#\n")
        assert plan.defining_decl["v"] == 2
        [user] = [unit for unit in plan.units if unit.names == ("user",)]
        # The user's dependency resolves to the *last* definition, so the
        # redefinition is planned before the user.
        v_defining = plan.units[plan.defining_unit["v"]]
        assert plan.units.index(v_defining) < plan.units.index(user)

    def test_span_relativization_round_trips(self):
        plan = plan_of(CHAIN)
        [unit] = [u for u in plan.units if u.names == ("c",)]
        span = plan.parsed.decl_span_list[0]  # 'c :: Int#'
        segment, fields = unit.relativize_span(span)
        assert segment == 0 and fields[0] == 0
        assert unit.absolutize_span(segment, fields) == span


class TestUnitCheckingSemantics:
    def test_forward_references_are_now_accepted(self):
        # Dependency-ordered checking makes declaration order irrelevant.
        check = Session().check("main = helper 1#\n"
                                "helper :: Int# -> Int#\n"
                                "helper x = x +# 1#\n", "fwd.lev")
        assert check.ok
        assert check.scheme_of("main").pretty() == "Int#"

    def test_mutual_recursion_checks_with_signatures(self):
        check = Session().check(
            "isEven :: Int# -> Bool\n"
            "isEven n = case n of { 0# -> True; _ -> isOdd (n -# 1#) }\n"
            "isOdd :: Int# -> Bool\n"
            "isOdd n = case n of { 0# -> False; _ -> isEven (n -# 1#) }\n",
            "mutual.lev")
        assert check.ok, [d.pretty() for d in check.diagnostics]
        assert check.scheme_of("isEven").pretty() == "Int# -> Bool"
        assert check.scheme_of("isOdd").pretty() == "Int# -> Bool"

    def test_mutual_recursion_without_signatures_is_rejected(self):
        check = Session().check(
            "isEven n = case n of { 0# -> True; _ -> isOdd (n -# 1#) }\n"
            "isOdd :: Int# -> Bool\n"
            "isOdd n = case n of { 0# -> False; _ -> isEven (n -# 1#) }\n",
            "mutual.lev")
        assert not check.ok
        messages = [d.message for d in check.errors]
        assert any("mutually recursive group" in m and "'isEven'" in m
                   for m in messages)

    def test_dependent_of_failed_unsigned_binding_reports_structurally(self):
        # 'bad' fails without a signature, so 'uses' cannot be checked:
        # it must say *why* instead of a bogus "'bad' is not in scope".
        check = Session().check("bad = missingThing\nuses = bad\n",
                                "structural.lev")
        assert not check.ok
        by_name = {b.name: b for b in check.bindings}
        assert not by_name["bad"].ok and not by_name["uses"].ok
        [uses_diag] = [d for d in check.errors if d.binding == "uses"]
        assert "its dependency 'bad' failed to check" in uses_diag.message

    def test_unrelated_bindings_still_check_around_a_failure(self):
        check = Session().check("bad = missingThing\nfine :: Int#\nfine = 1#\n",
                                "around.lev")
        by_name = {b.name: b for b in check.bindings}
        assert not by_name["bad"].ok
        assert by_name["fine"].ok

    def test_scope_error_spans_point_at_the_identifier(self):
        source = "h :: Int\nh = plusInt mystery 1\n"
        check = Session().check(source, "span.lev")
        [diagnostic] = check.errors
        line = source.split("\n")[diagnostic.span.line - 1]
        start = diagnostic.span.column - 1
        end = diagnostic.span.end_column - 1
        assert line[start:end] == "mystery"
