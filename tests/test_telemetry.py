"""Tests for the repro.telemetry layer (ISSUE-7).

Covers the subsystem's load-bearing guarantees:

* trace export is well-formed Chrome trace-event JSON — every ``B`` has a
  matching ``E`` and sibling spans never overlap on a (pid, tid) row;
* worker-process spans ship back through the shard IPC payload and merge
  onto the parent timeline with distinct pids, inside their shard window;
* a disabled tracer is allocation-free on the hot path (gc-count pin);
* the metrics registry resets **in place** (held ``Counter`` references
  survive), which is what stops benchmark E-sections sharing one process
  from leaking counters into each other;
* ``CheckStats`` rows carry an explicit ``source`` (``hit`` / ``checked``
  / ``skipped``) and cache hits no longer masquerade as 0.0-second units.
"""

import gc
import json
import os
import sys

import pytest

from repro.__main__ import main
from repro.driver import DriverOptions, Session
from repro.driver.batch import CheckStats, ResultCache, check_many_sharded
from repro.telemetry import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    Tracer,
    validate_events,
    validate_trace_document,
)
from repro.telemetry.trace import SHARD_TID_BASE, _NOOP_SPAN

TWO_UNIT_MODULE = """\
helper :: Int# -> Int#
helper x = x +# 1#
main :: Int
main = 1 + 2
"""

SECOND_MODULE = """\
double :: Int# -> Int#
double x = x +# x
main :: Int
main = 40 + 2
"""


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    """Tests drive the process-global singletons; leave them pristine."""
    TRACER.disable()
    TRACER.drain()
    REGISTRY.enabled = False
    REGISTRY.reset()
    yield
    TRACER.disable()
    TRACER.drain()
    REGISTRY.enabled = False
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# Span well-formedness
# ---------------------------------------------------------------------------


class TestTraceExport:
    def test_traced_check_emits_wellformed_nested_spans(self):
        TRACER.enable()
        session = Session()
        result = session.check(TWO_UNIT_MODULE, "t.lev")
        assert result.ok
        events = TRACER.drain()
        validate_events(events)  # raises on any B/E violation
        begins = [e["name"] for e in events if e["ph"] == "B"]
        for expected in ("parse", "depgraph", "unit.infer", "unit.unify"):
            assert expected in begins, f"missing {expected} span"
        # unit.unify nests inside unit.infer: between a unit.infer B and
        # its E there is a unify B (stack discipline already proved no
        # sibling overlap; this pins the parent/child relationship).
        names = [(e["ph"], e["name"]) for e in events
                 if e["name"] in ("unit.infer", "unit.unify")]
        infer_open = False
        saw_nested = False
        for ph, name in names:
            if name == "unit.infer":
                infer_open = ph == "B"
            elif ph == "B" and infer_open:
                saw_nested = True
        assert saw_nested

    def test_every_begin_has_an_end_even_on_type_errors(self):
        TRACER.enable()
        session = Session()
        result = session.check("bad :: Int#\nbad = 1 +# True\n", "bad.lev")
        assert not result.ok
        validate_events(TRACER.drain())

    def test_export_document_shape(self, tmp_path):
        TRACER.enable()
        Session().check(TWO_UNIT_MODULE, "t.lev")
        path = str(tmp_path / "trace.json")
        TRACER.write(path)
        with open(path) as handle:
            doc = json.load(handle)
        events = validate_trace_document(doc)
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)

    def test_validate_events_rejects_overlapping_siblings(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 2.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "E", "ts": 3.0, "pid": 1, "tid": 0},
        ]
        with pytest.raises(ValueError, match="overlap"):
            validate_events(events)

    def test_validate_events_rejects_unclosed_span(self):
        events = [{"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0}]
        with pytest.raises(ValueError, match="unclosed"):
            validate_events(events)


# ---------------------------------------------------------------------------
# Worker-span merging
# ---------------------------------------------------------------------------


class TestWorkerMerge:
    def test_merge_worker_rebases_and_keeps_pid(self):
        parent = Tracer()
        parent.enable()
        payload = {
            "pid": 4242,
            # The worker's wall epoch is 1ms after the parent's.
            "epoch_wall": parent.epoch_wall + 0.001,
            "process_name": "repro worker",
            "events": [
                {"name": "w", "ph": "B", "ts": 10.0, "pid": 4242, "tid": 0},
                {"name": "w", "ph": "E", "ts": 20.0, "pid": 4242, "tid": 0},
            ],
        }
        parent.merge_worker(payload)
        events = parent.drain()
        spans = [e for e in events if e["ph"] in "BE"]
        assert [e["pid"] for e in spans] == [4242, 4242]
        # Wall-clock epochs are ~1e9 s, so the delta carries ~0.1 µs of
        # float rounding — irrelevant at trace resolution.
        assert spans[0]["ts"] == pytest.approx(1010.0, abs=1.0)
        assert spans[1]["ts"] == pytest.approx(1020.0, abs=1.0)
        assert any(e["ph"] == "M" and e["pid"] == 4242 for e in events)

    def test_parallel_check_merges_worker_spans_under_shards(self, tmp_path,
                                                            monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        TRACER.enable()
        with Session() as session:
            results = session.check_many(
                [("a.lev", TWO_UNIT_MODULE), ("b.lev", SECOND_MODULE)],
                jobs=2, stats=CheckStats())
        assert all(r.ok for r in results)
        events = TRACER.drain()
        validate_events(events)
        parent_pid = os.getpid()
        worker_pids = {e["pid"] for e in events
                       if e["ph"] in "BE" and e["pid"] != parent_pid}
        assert worker_pids, "no worker spans merged back"
        # Shard dispatch windows live on synthetic tids of the parent.
        windows = {}
        for event in events:
            if event["name"] == "pool.shard":
                assert event["tid"] >= SHARD_TID_BASE
                windows.setdefault(event["tid"], {})[event["ph"]] = \
                    event["ts"]
        assert windows
        for spans in windows.values():
            assert spans["B"] <= spans["E"]
        # Every worker span falls inside some shard dispatch window.
        for event in events:
            if event["ph"] in "BE" and event["pid"] != parent_pid:
                assert any(w["B"] <= event["ts"] <= w["E"]
                           for w in windows.values()), \
                    f"worker span outside every shard window: {event}"

    def test_cli_trace_flag_writes_valid_document(self, tmp_path, capsys):
        source = tmp_path / "t.lev"
        source.write_text(TWO_UNIT_MODULE)
        out = tmp_path / "trace.json"
        assert main(["check", str(source), "--trace", str(out)]) == 0
        capsys.readouterr()
        with open(out) as handle:
            doc = json.load(handle)
        events = validate_trace_document(doc)
        assert any(e["name"] == "unit.infer" for e in events)


# ---------------------------------------------------------------------------
# Disabled-path cost
# ---------------------------------------------------------------------------


class TestDisabledCost:
    def test_disabled_span_is_the_noop_singleton(self):
        tracer = Tracer()
        assert tracer.span("anything") is _NOOP_SPAN
        with tracer.span("anything"):
            pass
        assert tracer.drain() == []

    def test_disabled_tracer_allocates_nothing(self):
        tracer = Tracer()
        spins = [None] * 1000

        def spin():
            for _ in spins:
                tracer.span("hot")
                tracer.begin("hot")
                tracer.end("hot")

        spin()  # warm every code path (method caches, freelists)
        gc.collect()
        before = sys.getallocatedblocks()
        spin()
        after = sys.getallocatedblocks()
        # The sampling itself costs a couple of blocks (the result ints);
        # an allocating implementation would leak thousands over 3000
        # calls.  The enabled contrast below proves the probe can see it.
        assert after - before <= 8, \
            f"disabled tracer calls leaked {after - before} blocks"
        tracer.enable()
        gc.collect()
        before = sys.getallocatedblocks()
        spin()
        after = sys.getallocatedblocks()
        assert after - before > 1000, \
            "probe failed to observe the enabled tracer's allocations"

    def test_disabled_registry_hot_counters_stay_zero(self):
        from repro.runtime.evaluator import Evaluator
        from repro.runtime.programs import sum_to_unboxed_module
        from repro.runtime.values import UnboxedInt

        program_module = sum_to_unboxed_module()
        from repro.runtime.evaluator import Program

        evaluator = Evaluator(Program.from_module(program_module),
                              compiled=True)
        evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(50))
        counters = REGISTRY.snapshot()["counters"]
        assert counters.get("runtime.compiled_calls", 0) == 0
        assert counters.get("runtime.trampoline_bounces", 0) == 0
        # The fold-point counters publish regardless of the enabled flag.
        assert counters.get("codegen.compiled", 0) > 0

    def test_enabled_registry_meters_the_trampoline(self):
        from repro.runtime.evaluator import Evaluator, Program
        from repro.runtime.programs import sum_to_unboxed_module
        from repro.runtime.values import UnboxedInt

        REGISTRY.enable()
        evaluator = Evaluator(Program.from_module(sum_to_unboxed_module()),
                              compiled=True)
        evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(50))
        counters = REGISTRY.snapshot()["counters"]
        assert counters["runtime.compiled_calls"] > 0
        assert counters["runtime.trampoline_bounces"] >= 50


# ---------------------------------------------------------------------------
# Registry reset semantics (the benchmark section-leak bugfix)
# ---------------------------------------------------------------------------


class TestRegistryReset:
    def test_reset_zeroes_in_place_preserving_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(5)
        gauge = registry.gauge("g")
        gauge.set(7)
        histogram = registry.histogram("h")
        histogram.observe(3.5)
        registry.reset()
        assert registry.counter("x") is counter and counter.value == 0
        assert registry.gauge("g") is gauge and gauge.value == 0
        assert histogram.count == 0 and histogram.min is None
        counter.inc(2)  # a held reference keeps counting after reset
        assert registry.snapshot()["counters"]["x"] == 2

    def test_sections_do_not_leak_through_drain(self):
        bench_dir = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            import benchreport
        finally:
            sys.path.remove(bench_dir)
        # Section 1: a check batch populates solver/batch counters.
        Session().check_many([("a.lev", TWO_UNIT_MODULE)], stats=CheckStats())
        first = benchreport.drain_registry()
        assert first["counters"]["batch.units_checked"] == 2
        # Section 2 starts from zero — nothing carried over.
        Session().check_many([("b.lev", SECOND_MODULE)], stats=CheckStats())
        second = benchreport.drain_registry()
        assert second["counters"]["batch.units_checked"] == 2
        assert second["counters"]["batch.files"] == 1

    def test_merge_counts_prefixes(self):
        registry = MetricsRegistry()
        registry.merge_counts({"finds": 3, "unions": 1}, "solver.")
        counters = registry.snapshot()["counters"]
        assert counters == {"solver.finds": 3, "solver.unions": 1}


# ---------------------------------------------------------------------------
# CheckStats source field
# ---------------------------------------------------------------------------


class TestCheckStatsSource:
    def test_hits_record_none_seconds_with_hit_source(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        cold = CheckStats()
        check_many_sharded([("a.lev", TWO_UNIT_MODULE)], DriverOptions(),
                           cache=cache, stats=cold)
        assert cold.checked == 2 and cold.cache_hits == 0
        assert all(t.source == "checked" and t.seconds is not None
                   for t in cold.timings)
        warm_cache = ResultCache(str(tmp_path / "cache.json"))
        warm = CheckStats()
        check_many_sharded([("a.lev", TWO_UNIT_MODULE)], DriverOptions(),
                           cache=warm_cache, stats=warm)
        # The whole file short-circuits on the file-level entry.
        assert warm.file_hits == 1 and warm.units == 0

    def test_unit_hits_are_untimed_not_zero_seconds(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        check_many_sharded([("a.lev", TWO_UNIT_MODULE)], DriverOptions(),
                           cache=cache, stats=CheckStats())
        edited = TWO_UNIT_MODULE.replace("1 + 2", "2 + 3")
        stats = CheckStats()
        check_many_sharded([("a.lev", edited)], DriverOptions(),
                           cache=cache, stats=stats)
        hits = [t for t in stats.timings if t.source == "hit"]
        checked = [t for t in stats.timings if t.source == "checked"]
        assert hits and checked
        assert all(t.seconds is None for t in hits)
        rendered = stats.pretty()
        assert "untimed units" in rendered and "hit: 1" in rendered

    def test_skipped_rows_render_distinctly(self):
        stats = CheckStats()

        class FakeUnit:
            names = ("dup",)

        stats.note("a.lev", FakeUnit(), None, "skipped")
        assert stats.skipped == 1 and stats.cache_hits == 0
        assert "skipped: 1" in stats.pretty()
        assert stats.as_dict()["timings"][0]["source"] == "skipped"

    def test_duplicate_jobs_count_as_skipped_in_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "always")
        stats = CheckStats()
        with Session() as session:
            results = session.check_many(
                [("a.lev", TWO_UNIT_MODULE), ("b.lev", TWO_UNIT_MODULE)],
                jobs=2, stats=stats)
        assert all(r.ok for r in results)
        assert stats.skipped == 2  # b.lev deduplicated against a.lev
        assert stats.checked == 2

    def test_outcome_alias_still_readable(self):
        stats = CheckStats()

        class FakeUnit:
            names = ("x",)

        stats.note("a.lev", FakeUnit(), 0.25, "checked")
        assert stats.timings[0].outcome == "checked"
