"""Shared pytest configuration for the repro test suite."""

import sys

import pytest

# The cost-model evaluator and the L semantics are recursive interpreters;
# deep (but bounded) workloads need more Python stack than the default.
sys.setrecursionlimit(200_000)


@pytest.fixture
def prelude_env():
    from repro.surface.prelude import prelude_env as make_env
    return make_env()


@pytest.fixture
def class_setup():
    """A (class_env, env) pair with Num/Eq and their instances registered."""
    from repro.classes import standard_class_env
    from repro.infer import Inferencer
    from repro.surface.prelude import prelude_env as make_env

    inferencer = Inferencer()
    env = make_env()
    class_env = standard_class_env(levity_polymorphic=True,
                                   inferencer=inferencer, env=env)
    env = env.bind_many(class_env.all_method_schemes())
    return class_env, env
