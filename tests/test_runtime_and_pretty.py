"""Tests for the cost-model runtime (§2.1's experiment) and pretty-printing (§8.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pretty import PrinterOptions, render_scheme, render_type
from repro.runtime import (
    CostModel,
    Evaluator,
    Program,
    UnboxedDouble,
    UnboxedInt,
    compare_sum_to,
    run_sum_to_boxed,
    run_sum_to_unboxed,
)
from repro.runtime.programs import (
    div_mod_unboxed_module,
    geometric_sum_double_module,
    sum_squares_unboxed_module,
    sum_to_boxed_module,
    sum_to_unboxed_module,
)
from repro.surface.ast import (
    Alternative,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitInt,
    ELitIntHash,
    EUnboxedTuple,
    EVar,
    apply,
)
from repro.surface.prelude import DOLLAR_SCHEME, ERROR_SCHEME, prelude_env
from repro.surface.types import INT_HASH_TY, INT_TY, fun


class TestEvaluatorBasics:
    def test_unboxed_arithmetic(self):
        evaluator = Evaluator()
        value = evaluator.eval(apply(EVar("+#"), ELitIntHash(3),
                                     ELitIntHash(4)))
        assert evaluator.int_result(value) == 7

    def test_boxed_literal_allocates(self):
        evaluator = Evaluator()
        evaluator.eval(ELitInt(5))
        assert evaluator.costs.heap_allocations == 1

    def test_unboxed_literal_does_not_allocate(self):
        evaluator = Evaluator()
        evaluator.eval(ELitIntHash(5))
        assert evaluator.costs.heap_allocations == 0

    def test_boxing_and_unboxing_roundtrip(self):
        evaluator = Evaluator()
        expr = ECase(apply(EVar("I#"), ELitIntHash(9)),
                     [Alternative("I#", ["x"], EVar("x"))])
        assert evaluator.int_result(evaluator.eval(expr)) == 9

    def test_lazy_let_is_not_forced_when_unused(self):
        evaluator = Evaluator()
        expr = ELet("unused", apply(EVar("+#"), ELitIntHash(1),
                                    ELitIntHash(2)),
                    ELitIntHash(0))
        evaluator.eval(expr)
        assert evaluator.costs.thunk_allocations == 1
        assert evaluator.costs.thunk_forces == 0

    def test_thunks_are_shared(self):
        evaluator = Evaluator()
        # let x = 1 + 2 in (x + x): the thunk is forced once.
        expr = ELet("x", apply(EVar("plusInt"), ELitInt(1), ELitInt(2)),
                    apply(EVar("plusInt"), EVar("x"), EVar("x")))
        assert evaluator.int_result(evaluator.eval(expr)) == 6
        assert evaluator.costs.thunk_forces == 1

    def test_if_on_primop_comparison(self):
        evaluator = Evaluator()
        expr = EIf(apply(EVar("ltInt"), ELitInt(1), ELitInt(2)),
                   ELitIntHash(10), ELitIntHash(20))
        assert evaluator.int_result(evaluator.eval(expr)) == 10

    def test_unboxed_tuple_value(self):
        evaluator = Evaluator()
        value = evaluator.eval(EUnboxedTuple((ELitIntHash(1),
                                              ELitIntHash(2))))
        assert value.components == (UnboxedInt(1), UnboxedInt(2))
        assert evaluator.costs.heap_allocations == 0

    def test_pattern_match_failure(self):
        from repro.core.errors import PatternError
        evaluator = Evaluator()
        expr = ECase(ELitIntHash(3), [Alternative("0#", [], ELitIntHash(1))])
        with pytest.raises(PatternError):
            evaluator.eval(expr)

    def test_class_method_dispatch(self, class_setup):
        class_env, _ = class_setup
        program = Program(class_env=class_env)
        evaluator = Evaluator(program)
        value = evaluator.eval(apply(EVar("+"), ELitIntHash(3),
                                     ELitIntHash(4)))
        assert evaluator.int_result(value) == 7

    def test_explicit_dictionary_build_and_select(self, class_setup):
        class_env, _ = class_setup
        program = Program(class_env=class_env)
        evaluator = Evaluator(program)
        dictionary = evaluator.build_dictionary("Num", INT_HASH_TY)
        plus = evaluator.select_method(dictionary, "+")
        result = evaluator.apply_value(
            evaluator.apply_value(plus, UnboxedInt(2)), UnboxedInt(5))
        assert evaluator.int_result(result) == 7
        assert evaluator.costs.dictionary_lookups >= 1


class TestSumToExperiment:
    """E1: the Section 2.1 boxed-vs-unboxed contrast."""

    def test_results_agree_and_match_the_closed_form(self):
        report = compare_sum_to(100)
        assert report["boxed"] is not None and report["unboxed"] is not None

    def test_unboxed_loop_performs_no_memory_traffic(self):
        _, costs = run_sum_to_unboxed(300)
        assert costs.heap_allocations == 0
        assert costs.thunk_allocations == 0
        assert costs.thunk_forces == 0
        assert costs.pointer_reads == 0

    def test_boxed_loop_allocates_per_iteration(self):
        _, costs = run_sum_to_boxed(100)
        assert costs.heap_allocations >= 100       # at least one box/iteration
        assert costs.thunk_allocations >= 100
        assert costs.thunk_forces == costs.thunk_updates

    def test_boxed_is_much_more_expensive(self):
        report = compare_sum_to(200)
        boxed = report["boxed"]["estimated_cycles"]
        unboxed = report["unboxed"]["estimated_cycles"]
        assert boxed > 10 * unboxed
        assert report["unboxed"]["memory_traffic"] == 0

    @given(n=st.integers(min_value=1, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_boxed_and_unboxed_always_agree(self, n):
        boxed_result, _ = run_sum_to_boxed(n)
        unboxed_result, _ = run_sum_to_unboxed(n)
        assert boxed_result == unboxed_result == n * (n + 1) // 2

    def test_param_strictness_comes_from_kinds(self):
        boxed = Program.from_module(sum_to_boxed_module())
        unboxed = Program.from_module(sum_to_unboxed_module())
        assert boxed.functions["sumTo"].param_strict == (False, False)
        assert unboxed.functions["sumTo#"].param_strict == (True, True)

    def test_other_workloads_run(self):
        program = Program.from_module(sum_squares_unboxed_module())
        evaluator = Evaluator(program)
        value = evaluator.run("sumSq#", UnboxedInt(0), UnboxedInt(10))
        assert evaluator.int_result(value) == sum(i * i for i in range(11))

        program = Program.from_module(geometric_sum_double_module())
        evaluator = Evaluator(program)
        value = evaluator.force(evaluator.run("geo##", UnboxedDouble(0.0),
                                              UnboxedInt(4)))
        assert abs(value.value - (1.0 + 0.5 + 1 / 3 + 0.25)) < 1e-9

    def test_divmod_returns_values_in_registers(self):
        program = Program.from_module(div_mod_unboxed_module())
        evaluator = Evaluator(program)
        value = evaluator.run("divMod#", UnboxedInt(17), UnboxedInt(5))
        assert value.components == (UnboxedInt(3), UnboxedInt(2))
        assert evaluator.costs.heap_allocations == 0

    def test_cost_model_arithmetic(self):
        a, b = CostModel(), CostModel()
        a.primops, b.primops = 10, 4
        assert (a - b).primops == 6
        assert a.estimated_cycles() >= b.estimated_cycles()


class TestPrettyPrinting:
    """E7/§8.1: display defaulting of representation variables."""

    def test_dollar_default_display_matches_the_simple_type(self):
        assert render_scheme(DOLLAR_SCHEME) == "(a -> b) -> a -> b"

    def test_dollar_explicit_display_shows_rep_binders(self):
        rendered = render_scheme(
            DOLLAR_SCHEME, PrinterOptions(print_explicit_runtime_reps=True))
        assert "Rep" in rendered and "TYPE r" in rendered

    def test_error_default_display(self):
        assert render_scheme(ERROR_SCHEME) == "String -> a"

    def test_explicit_foralls_without_reps(self):
        rendered = render_scheme(
            DOLLAR_SCHEME, PrinterOptions(print_explicit_foralls=True))
        assert rendered.startswith("forall")
        assert "Rep" not in rendered

    def test_render_plain_type(self):
        assert render_type(fun(INT_HASH_TY, INT_TY)) == "Int# -> Int"

    def test_monomorphic_scheme_untouched(self):
        from repro.infer import Scheme
        assert render_scheme(Scheme.monomorphic(INT_TY)) == "Int"
