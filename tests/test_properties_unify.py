"""Property-based tests for the union-find unifier (hypothesis).

Three algebraic properties the solver must satisfy on *random* terms:

* **zonking is a fixpoint** — ``zonk(zonk(t)) == zonk(t)`` for every type,
  kind and rep, whatever unifications happened before;
* **unification is idempotent** — re-unifying two already-unified terms
  succeeds and creates no new bindings (the store version is unchanged);
* **unification actually unifies** — after ``unify(t1, t2)`` succeeds,
  ``zonk(t1) == zonk(t2)``.

The strategies build kind-correct first-order types over the built-in
constructors, rigid/unification rep variables, and unboxed tuples, then
drive the solver with random unification scripts, discarding the scripts
that (legitimately) fail to unify.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.errors import (
    KindError,
    OccursCheckError,
    UnificationError,
)
from repro.core.kinds import TypeKind
from repro.core.rep import (
    DOUBLE_REP,
    INT_REP,
    LIFTED,
    RepVar,
    SumRep,
    TupleRep,
    UNLIFTED,
)
from repro.infer.unify import UnifierState
from repro.surface.types import (
    BOOL_TY,
    DOUBLE_HASH_TY,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    MAYBE_TY,
    TyApp,
    UnboxedTupleTy,
)

UNIFY_ERRORS = (UnificationError, OccursCheckError, KindError)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_nullary_reps = st.sampled_from([LIFTED, UNLIFTED, INT_REP, DOUBLE_REP])
_rigid_rep_vars = st.sampled_from([RepVar("r"), RepVar("s")])
_uni_rep_vars = st.sampled_from(
    [RepVar(f"prho{i}", unification=True) for i in range(4)])

reps = st.recursive(
    _nullary_reps | _rigid_rep_vars | _uni_rep_vars,
    lambda children: st.builds(
        TupleRep, st.lists(children, max_size=3)) | st.builds(
        SumRep, st.lists(children, min_size=1, max_size=3)),
    max_leaves=8,
)

kinds = st.builds(TypeKind, reps)

#: Kind-correct value types: lifted bases, unboxed bases, Maybe chains,
#: arrows and unboxed tuples over them.
_base_types = st.sampled_from([INT_TY, BOOL_TY, INT_HASH_TY, DOUBLE_HASH_TY])


def _maybe_of(t):
    # ``Maybe`` only applies to lifted types; fall back to Maybe Int.
    from repro.surface.types import kind_of_type
    from repro.core.kinds import TYPE_LIFTED

    if kind_of_type(t) == TYPE_LIFTED:
        return TyApp(MAYBE_TY, t)
    return TyApp(MAYBE_TY, INT_TY)


types = st.recursive(
    _base_types,
    lambda children: (
        st.builds(FunTy, children, children)
        | st.builds(_maybe_of, children)
        | st.builds(UnboxedTupleTy, st.lists(children, max_size=3))
    ),
    max_leaves=10,
)


def _fresh_state_with_noise(noise_pairs):
    """A state pre-loaded with a random (successful) unification script."""
    state = UnifierState()
    for left, right in noise_pairs:
        alpha = state.fresh_type_uvar()
        try:
            state.unify_types(alpha, left)
            state.unify_types(alpha, right)
        except UNIFY_ERRORS:
            pass
    return state


# ---------------------------------------------------------------------------
# Zonking is a fixpoint
# ---------------------------------------------------------------------------


@given(rep=reps, noise=st.lists(st.tuples(types, types), max_size=3))
@settings(max_examples=60, deadline=None)
def test_zonk_rep_is_fixpoint(rep, noise):
    state = _fresh_state_with_noise(noise)
    rho = state.fresh_rep_uvar()
    try:
        state.unify_reps(rho, rep)
    except UNIFY_ERRORS:
        pass
    once = state.zonk_rep(rep)
    assert state.zonk_rep(once) == once


@given(kind=kinds, noise=st.lists(st.tuples(types, types), max_size=3))
@settings(max_examples=60, deadline=None)
def test_zonk_kind_is_fixpoint(kind, noise):
    state = _fresh_state_with_noise(noise)
    once = state.zonk_kind(kind)
    assert state.zonk_kind(once) == once


@given(type_=types, noise=st.lists(st.tuples(types, types), max_size=3))
@settings(max_examples=60, deadline=None)
def test_zonk_type_is_fixpoint(type_, noise):
    state = _fresh_state_with_noise(noise)
    alpha = state.fresh_type_uvar()
    try:
        state.unify_types(alpha, type_)
    except UNIFY_ERRORS:
        pass
    once = state.zonk_type(alpha)
    assert state.zonk_type(once) == once
    zonked = state.zonk_type(type_)
    assert state.zonk_type(zonked) == zonked


# ---------------------------------------------------------------------------
# Unifiable-by-construction pairs: a term vs. a copy with random subterms
# abstracted into fresh unification variables.
# ---------------------------------------------------------------------------


def _abstract_type(state, type_, rng):
    """Replace ~1/3 of the subterms of ``type_`` by fresh type uvars."""
    if rng.random() < 0.34:
        return state.fresh_type_uvar()
    if isinstance(type_, FunTy):
        return FunTy(_abstract_type(state, type_.argument, rng),
                     _abstract_type(state, type_.result, rng))
    if isinstance(type_, UnboxedTupleTy):
        return UnboxedTupleTy(_abstract_type(state, c, rng)
                              for c in type_.components)
    if isinstance(type_, TyApp):
        return TyApp(type_.function,
                     _abstract_type(state, type_.argument, rng))
    return type_


def _abstract_rep(state, rep, rng):
    """Replace ~1/3 of the subterms of ``rep`` by fresh rep uvars."""
    if rng.random() < 0.34:
        return state.fresh_rep_uvar()
    if isinstance(rep, TupleRep):
        return TupleRep(_abstract_rep(state, r, rng) for r in rep.reps)
    if isinstance(rep, SumRep):
        return SumRep(_abstract_rep(state, r, rng)
                      for r in rep.alternatives)
    return rep


# ---------------------------------------------------------------------------
# Unification is idempotent
# ---------------------------------------------------------------------------


@given(type_=types, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_reunifying_unified_types_is_a_noop(type_, seed):
    import random

    state = UnifierState()
    abstracted = _abstract_type(state, type_, random.Random(seed))
    state.unify_types(abstracted, type_)  # unifiable by construction
    version_before = state._version
    bindings_before = (state.stats.type_bindings, state.stats.rep_bindings,
                       state.stats.kind_bindings)
    # Re-unifying the already-unified pair must succeed and bind nothing.
    state.unify_types(abstracted, type_)
    state.unify_types(state.zonk_type(abstracted), state.zonk_type(type_))
    assert state._version == version_before
    assert (state.stats.type_bindings, state.stats.rep_bindings,
            state.stats.kind_bindings) == bindings_before


@given(rep=reps, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_reunifying_unified_reps_is_a_noop(rep, seed):
    import random

    state = UnifierState()
    abstracted = _abstract_rep(state, rep, random.Random(seed))
    try:
        state.unify_reps(abstracted, rep)
    except OccursCheckError:
        # ``rep`` may contain the strategy's shared unification variables,
        # which an abstraction hole can capture (ρ ~ TupleRep [.. ρ ..]).
        assume(False)
    version_before = state._version
    state.unify_reps(abstracted, rep)
    state.unify_reps(state.zonk_rep(abstracted), state.zonk_rep(rep))
    assert state._version == version_before


# ---------------------------------------------------------------------------
# Unification unifies
# ---------------------------------------------------------------------------


@given(type_=types, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_successful_unification_makes_zonked_types_equal(type_, seed):
    import random

    state = UnifierState()
    abstracted = _abstract_type(state, type_, random.Random(seed))
    state.unify_types(abstracted, type_)
    assert state.zonk_type(abstracted) == state.zonk_type(type_)


@given(rep=reps, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_successful_rep_unification_makes_zonked_reps_equal(rep, seed):
    import random

    state = UnifierState()
    abstracted = _abstract_rep(state, rep, random.Random(seed))
    try:
        state.unify_reps(abstracted, rep)
    except OccursCheckError:
        assume(False)
    assert state.zonk_rep(abstracted) == state.zonk_rep(rep)
