"""Executable metatheory: Preservation, Progress, Compilation, Simulation (§6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang_l import Context, type_of
from repro.lang_l.examples import WELL_TYPED
from repro.metatheory import (
    check_all,
    check_compilation,
    check_preservation,
    check_progress,
    check_simulation,
    generate_corpus,
    generate_program,
)


class TestTheoremsOnExamples:
    @pytest.mark.parametrize("example", WELL_TYPED, ids=lambda e: e.name)
    def test_all_theorems_hold_on_the_example_catalogue(self, example):
        report = check_all(example.expr, max_steps=60, probe_depth=1)
        assert report.all_hold, report.failures()

    def test_preservation_vacuous_on_values(self):
        from repro.lang_l.syntax import Lit
        assert check_preservation(Lit(1)).holds

    def test_progress_fails_on_ill_typed_term(self):
        from repro.lang_l.syntax import Var
        assert not check_progress(Var("ghost")).holds

    def test_compilation_fails_on_ill_typed_term(self):
        from repro.lang_l.syntax import App, Lit
        assert not check_compilation(App(Lit(1), Lit(2))).holds


class TestTheoremsOnRandomPrograms:
    """The paper's theorems, tested over a seeded random corpus."""

    CORPUS = generate_corpus(40, seed=100, depth=4)

    @pytest.mark.parametrize("seed,program", CORPUS,
                             ids=[f"seed{s}" for s, _ in CORPUS])
    def test_generated_programs_are_well_typed(self, seed, program):
        type_of(Context(), program)  # must not raise

    @pytest.mark.parametrize("seed,program", CORPUS[:20],
                             ids=[f"seed{s}" for s, _ in CORPUS[:20]])
    def test_preservation_progress_compilation_along_traces(self, seed,
                                                            program):
        report = check_all(program, max_steps=50,
                           check_simulation_steps=False)
        assert report.all_hold, report.failures()

    @pytest.mark.parametrize("seed,program", CORPUS[:10],
                             ids=[f"seed{s}" for s, _ in CORPUS[:10]])
    def test_simulation_along_traces(self, seed, program):
        report = check_all(program, max_steps=25, check_simulation_steps=True,
                           probe_depth=1)
        assert report.all_hold, report.failures()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_generated_programs_satisfy_progress_and_preservation(
            self, seed):
        program = generate_program(seed, depth=3)
        type_of(Context(), program)
        assert check_progress(program).holds
        assert check_preservation(program).holds

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_generated_programs_compile(self, seed):
        program = generate_program(seed, depth=3)
        assert check_compilation(program).holds

    @given(seed=st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=10, deadline=None)
    def test_hypothesis_simulation_single_step(self, seed):
        program = generate_program(seed, depth=3)
        assert check_simulation(program, probe_depth=1).holds
