"""The differential harness at scale: fixed seeds, zero disagreements.

The acceptance bar for the fuzzing PR: **1000+ generated programs** run
through the full differential harness (type-check + intended types,
parse∘pretty round-trip, evaluator execution, reference-semantics values,
and the evaluator↔M-machine cross-check on the compilable fragment) with
zero unexplained failures, on fixed seeds so the corpus is reproducible.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.fuzz import (
    DifferentialHarness,
    GenOptions,
    generate_corpus,
    generated_programs,
    shrink_counterexample,
)
from repro.fuzz.generator import INT_HASH_TY

#: Fixed corpus seed — bump deliberately, never implicitly.
CORPUS_SEED = 20260731
CORPUS_SIZE = 1050


@pytest.fixture(scope="module")
def harness():
    return DifferentialHarness()


class TestFixedSeedCorpus:
    def test_1000_plus_programs_zero_disagreements(self, harness):
        corpus = generate_corpus(CORPUS_SEED, CORPUS_SIZE)
        report = harness.run_corpus(corpus)
        assert report.programs == CORPUS_SIZE
        assert report.ok, report.pretty(max_failures=3)
        # The oracles must actually engage, not silently skip:
        assert report.counters["fragment_programs"] >= CORPUS_SIZE // 10
        assert report.counters["machine_engaged"] >= CORPUS_SIZE // 10
        assert report.counters["reference_checked"] >= CORPUS_SIZE // 2
        assert report.counters["unsigned_bindings"] >= 10
        # Tri-state accounting (the old `machine_agrees is None` test
        # conflated "ran, not comparable" with "never ran"): skips are
        # counted separately, and engaged + skipped covers the corpus.
        assert report.counters["machine_engaged"] \
            + report.counters["machine_skipped_out_of_fragment"] \
            == CORPUS_SIZE
        # Per-program Simulation discharge (§6.3) runs on every
        # machine-engaged program in the corpus.
        assert report.counters["validated"] \
            + report.counters.get("validation_skipped", 0) \
            == report.counters["machine_engaged"]
        assert report.counters["obligations_discharged"] \
            >= report.counters["validated"]

    def test_all_fragment_corpus_engages_the_machine_everywhere(self):
        # "Zero programs skipped for recursion or primops": with the
        # whole-language fragment (fix + primops + literal cases + loop
        # helpers) every fragment-mode program must lower and cross-check.
        harness = DifferentialHarness()
        corpus = generate_corpus(CORPUS_SEED + 2, 150,
                                 GenOptions(fragment_bias=1.0))
        report = harness.run_corpus(corpus)
        assert report.ok, report.pretty(max_failures=3)
        assert report.counters["fragment_programs"] == 150
        assert report.counters["machine_engaged"] == 150
        assert "machine_skipped_out_of_fragment" not in report.counters

    def test_deeper_corpus_smoke(self, harness):
        corpus = generate_corpus(CORPUS_SEED + 1, 60,
                                 GenOptions(depth=6, max_bindings=5))
        report = harness.run_corpus(corpus)
        assert report.ok, report.pretty(max_failures=3)


class TestShardedAndCachedChecking:
    """The harness rides the sharded batch checker (jobs= / cache=)."""

    def test_jobs_and_cache_agree_with_serial(self, harness, tmp_path):
        corpus = generate_corpus(7, 40)
        serial = harness.run_corpus(corpus)
        cache_path = str(tmp_path / "fuzz-cache.json")
        sharded = DifferentialHarness().run_corpus(corpus, jobs=2,
                                                   cache=cache_path)
        assert serial.ok and sharded.ok
        assert serial.counters == sharded.counters
        # Warm re-run: every type-check answered from the cache.
        warm = DifferentialHarness().run_corpus(corpus, cache=cache_path)
        assert warm.ok and warm.counters == serial.counters


class TestHypothesisIntegration:
    @given(generated_programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    def test_every_drawn_program_passes_all_oracles(self, program):
        failures = DifferentialHarness().check_program(program)
        assert not failures, failures[0].pretty() + "\n" + program.source

    def test_shrinking_finds_a_minimal_example(self):
        # A synthetic "failure" predicate: hypothesis must both find a
        # matching program and shrink it down — this keeps the
        # counterexample-minimisation path exercised even while the real
        # oracles stay green.
        predicate = (lambda program:
                     program.fragment and program.main_type == INT_HASH_TY)
        shrunk = shrink_counterexample(
            predicate, GenOptions(depth=2, max_bindings=2,
                                  fragment_bias=1.0),
            max_examples=120)
        assert shrunk is not None
        assert predicate(shrunk)
        # Shrinking is heuristic, but it must stay within the generator's
        # structural bounds and produce a modest reproducer.
        assert len(shrunk.module.bindings()) <= 3
        assert len(shrunk.source) < 4000
