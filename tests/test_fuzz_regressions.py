"""Regressions pinned from corpus-fuzzing finds (tests/golden/fuzz/*.lev).

Each golden file is a shrunk ``.lev`` reproducer for one bug the
differential harness flushed out; the header comments in each file record
the oracle that caught it and what the correct behaviour is.  These tests
re-run the files through the real pipeline, so the bugs stay fixed.
"""

import os

import pytest

from repro.driver import Session

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "fuzz")


def _source(name):
    with open(os.path.join(GOLDEN_DIR, name), encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def session():
    return Session()


class TestQuotRemPrecision:
    """quotInt#/remInt# detoured through a float and lost low bits."""

    def test_big_operand_quotients_are_exact(self, session):
        result = session.run(_source("quot_precision.lev"),
                             "quot_precision.lev")
        assert result.ok, result.check.pretty()
        assert result.value == ("(# 1537228672809129301#, 2#, "
                                "-1537228672809129301# #)")

    def test_division_by_zero_is_bottom(self, session):
        # The seed made quot/rem *total* (b == 0 yielded 0).  Division by
        # zero is now bottom on every backend — evaluator, compiled
        # closures and the M machine — and the cross-check records that
        # both sides agreed on bottom.
        result = session.run(_source("quot_by_zero.lev"), "quot_by_zero.lev")
        assert not result.ok
        assert any("by zero" in d.message for d in result.check.errors)
        assert result.machine_agrees is True

    def test_rem_by_zero_is_bottom_too(self, session):
        result = session.run("main :: Int#\nmain = remInt# 9# 0#\n")
        assert not result.ok
        assert any("remInt#" in d.message for d in result.check.errors)


class TestStrictUnboxedLet:
    """A let binder at an unboxed type is strict (Figure 7's let!)."""

    def test_unboxed_let_forces_bottom(self, session):
        result = session.run(_source("strict_unboxed_let.lev"),
                             "strict_unboxed_let.lev")
        assert not result.ok
        assert any("undefined" in d.message.lower()
                   for d in result.check.errors)

    def test_lifted_let_stays_lazy(self, session):
        result = session.run("main :: Int#\n"
                             "main = let x :: Int; x = undefined in 42#\n")
        assert result.ok and result.value == "42#"

    def test_unannotated_let_stays_lazy(self, session):
        # Without a signature the evaluator has no kind to consult, so the
        # unused unboxed rhs keeps its thunk (matches
        # test_lazy_let_is_not_forced_when_unused).
        result = session.run("main :: Int#\n"
                             "main = let x = 1# in 42#\n")
        assert result.ok and result.value == "42#"


class TestFunctionEntryCrossCheck:
    """Function-typed entries run on the machine but are 'not comparable'."""

    def test_machine_runs_without_bogus_disagreement(self, session):
        result = session.run(_source("function_entry.lev"),
                             "function_entry.lev")
        assert result.ok, result.check.pretty()
        assert result.machine_value is not None
        assert result.machine_agrees is None
        assert not any("disagrees" in d.message.lower()
                       for d in result.check.diagnostics)
        assert any("no canonical comparison" in d.message
                   for d in result.check.diagnostics)

    def test_scalar_entries_still_compare(self, session):
        result = session.run("main :: Int\nmain = I# 7#\n")
        assert result.ok and result.machine_agrees is True


class TestUnboxedTuplePatterns:
    """case over (# ... #) now infers (the (#,#) pseudo-constructor)."""

    def test_swap_checks_and_runs(self, session):
        result = session.run(_source("unboxed_tuple_pattern.lev"),
                             "unboxed_tuple_pattern.lev")
        assert result.ok, result.check.pretty()
        assert result.value == "1#"

    def test_pattern_arity_mismatch_is_a_type_error(self, session):
        check = session.check(
            "main :: Int#\n"
            "main = case (# 1#, 2# #) of { (# a, b, c #) -> a }\n")
        assert not check.ok

    def test_mixed_rep_components(self, session):
        result = session.run(
            "main :: Double#\n"
            "main = case (# 1#, 2.5## #) of "
            "{ (# n, d #) -> d +## int2Double# n }\n")
        assert result.ok and result.value == "3.5##"


class TestRuntimePreludeGaps:
    """&&, || and appendString type-checked but were unbound at runtime."""

    def test_connectives_run_and_shortcircuit(self, session):
        result = session.run(_source("boolean_connectives.lev"),
                             "boolean_connectives.lev")
        assert result.ok, result.check.pretty()
        assert result.value == "True"

    def test_and_shortcircuits_on_false(self, session):
        result = session.run(
            "main :: Bool\n"
            "main = (&&) False (undefined :: Bool)\n")
        assert result.ok and result.value == "False"

    def test_append_string(self, session):
        result = session.run(_source("string_append.lev"),
                             "string_append.lev")
        assert result.ok, result.check.pretty()
        assert result.value == "'hello, fuzz!'"
