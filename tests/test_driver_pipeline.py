"""Tests for the end-to-end driver: Session/Pipeline, CLI, golden rejects."""

import glob
import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.driver import Diagnostic, DriverOptions, Session
from repro.driver.lower import LoweringError, lower_entry
from repro.frontend import parse_module

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN_DIR = os.path.join(HERE, "golden")
EXAMPLES_DIR = os.path.join(os.path.dirname(HERE), "examples")

SUM_TO = """\
sumTo# :: Int# -> Int# -> Int#
sumTo# acc n = case n ==# 0# of { 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }

main :: Int#
main = sumTo# 0# 100#
"""

DOLLAR = """\
myError :: forall (r :: Rep) (a :: TYPE r). String -> a
myError s = error s

unbox :: Int -> Int#
unbox b = case b of { I# x -> x }

main :: Int#
main = unbox $ I# 42#
"""

FRAGMENT = """\
unbox :: Int -> Int#
unbox b = case b of { I# x -> x }

main :: Int#
main = unbox (I# 17#)
"""


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Session.check
# ---------------------------------------------------------------------------


class TestCheck:
    def test_accepts_and_renders_schemes(self):
        check = Session().check(SUM_TO, "sumto.lev")
        assert check.ok
        assert check.scheme_of("sumTo#").pretty() == "Int# -> Int# -> Int#"
        assert check.scheme_of("main").pretty() == "Int#"

    def test_explicit_reps_rendering(self):
        options = DriverOptions(explicit_runtime_reps=True)
        check = Session(options).check(DOLLAR, "dollar.lev")
        assert check.ok
        [my_error] = [b for b in check.bindings if b.name == "myError"]
        assert my_error.rendered == \
            "forall (r :: Rep) (a :: TYPE r). String -> a"

    def test_levity_rejection_has_span(self):
        check = Session().check(
            "f :: forall (r :: Rep) (a :: TYPE r). a -> a\nf x = x\n",
            "bad.lev")
        assert not check.ok
        [diagnostic] = check.errors
        assert diagnostic.stage == "levity"
        assert diagnostic.binding == "f"
        assert diagnostic.span.line == 2
        assert diagnostic.span.column == 1
        assert "bad.lev:2:1" in diagnostic.pretty()

    def test_one_bad_binding_does_not_hide_the_rest(self):
        source = ("good :: Int#\ngood = 1#\n"
                  "bad :: Int\nbad = 2#\n"
                  "alsoGood :: Int#\nalsoGood = good +# 1#\n")
        check = Session().check(source, "mixed.lev")
        assert not check.ok
        by_name = {b.name: b for b in check.bindings}
        assert by_name["good"].ok
        assert not by_name["bad"].ok
        assert by_name["alsoGood"].ok  # still checked, sees 'good'

    def test_failed_binding_with_signature_stays_usable(self):
        # The declared signature is trusted downstream even when the body
        # fails, exactly like a batch compiler recovering per declaration.
        source = ("bad :: Int# -> Int#\nbad x = missingVariable\n"
                  "uses :: Int#\nuses = bad 1#\n")
        check = Session().check(source, "recover.lev")
        by_name = {b.name: b for b in check.bindings}
        assert not by_name["bad"].ok
        assert by_name["uses"].ok

    def test_defaulted_rep_vars_surface(self):
        check = Session().check("f x = x\n", "id.lev")
        [binding] = check.bindings
        assert binding.ok
        assert binding.defaulted_rep_vars  # "never infer levity polymorphism"

    def test_signature_without_binding_warns(self):
        check = Session().check("lonely :: Int\n", "lonely.lev")
        assert check.ok  # warning, not error
        assert any(d.severity == "warning" for d in check.diagnostics)

    def test_check_many_batches(self):
        session = Session()
        results = session.check_many(
            [("a.lev", SUM_TO), ("b.lev", DOLLAR), ("c.lev", "g :: Int\ng = 1#\n")])
        assert [r.ok for r in results] == [True, True, False]


# ---------------------------------------------------------------------------
# Session.run / Session.compile
# ---------------------------------------------------------------------------


class TestRunAndCompile:
    def test_run_unboxed_loop(self):
        result = Session().run(SUM_TO, "sumto.lev")
        assert result.ok
        assert result.value == "5050#"
        assert result.costs["heap_allocations"] == 0

    def test_run_levity_polymorphic_program_end_to_end(self):
        result = Session().run(DOLLAR, "dollar.lev")
        assert result.ok
        assert result.value == "42#"

    def test_run_fragment_cross_checks_on_machine(self):
        result = Session().run(FRAGMENT, "fragment.lev")
        assert result.ok
        assert result.value == "17#"
        assert result.machine_value == "17"
        assert result.machine_steps > 0

    def test_run_missing_entry(self):
        result = Session().run("f :: Int#\nf = 1#\n", "noentry.lev")
        assert not result.ok
        assert any(d.stage == "run" for d in result.diagnostics)

    def test_run_rejects_parameterised_entry(self):
        result = Session().run("main :: Int# -> Int#\nmain x = x\n",
                               "arity.lev")
        assert not result.ok

    def test_compile_shows_l_and_m(self):
        result = Session().compile(FRAGMENT, "fragment.lev")
        assert result.ok
        assert "case" in result.l_source
        assert result.l_type == "Int#"
        assert "let" in result.m_code
        assert result.machine_value == "17"
        assert result.lazy_lets >= 1  # the boxed argument gets a lazy let

    def test_compile_outside_fragment_reports_diagnostic(self):
        # A String-typed binding is genuinely out of the fragment.
        result = Session().compile(
            "main :: String\nmain = \"hi\"\n", "string.lev")
        assert not result.ok
        assert any(d.stage == "compile" for d in result.diagnostics)

    def test_lower_entry_accepts_recursion_via_fix(self):
        # Recursive bindings lower through L's fix form and the machine
        # agrees with the evaluator on the result.
        parsed = parse_module(SUM_TO, "sumto.lev")
        check = Session().check(SUM_TO, "sumto.lev")
        schemes = {b.name: b.scheme for b in check.bindings}
        term = lower_entry(parsed.module, schemes, "sumTo#")
        assert "fix sumTo#" in term.pretty()
        result = Session().run(SUM_TO, "sumto.lev")
        assert result.ok and result.value == "5050#"
        assert result.machine_agrees is True


# ---------------------------------------------------------------------------
# Golden rejects
# ---------------------------------------------------------------------------


GOLDEN_CASES = sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.lev")))


class TestGolden:
    @pytest.mark.parametrize(
        "path", GOLDEN_CASES, ids=[os.path.basename(p) for p in GOLDEN_CASES])
    def test_rejected_program_diagnostics(self, path):
        source = _read(path)
        expected = _read(path[: -len(".lev")] + ".expected")
        check = Session().check(source, os.path.basename(path))
        assert not check.ok, f"{path} unexpectedly accepted"
        actual = "\n".join(d.pretty() for d in check.diagnostics) + "\n"
        assert actual == expected

    def test_golden_corpus_is_nonempty(self):
        assert len(GOLDEN_CASES) >= 5


# ---------------------------------------------------------------------------
# Examples via the CLI entry point
# ---------------------------------------------------------------------------


EXAMPLE_FILES = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.lev")))


class TestCli:
    def test_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 2

    def test_check_examples(self, capsys):
        status = cli_main(["check"] + EXAMPLE_FILES)
        assert status == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_check_json(self, capsys):
        status = cli_main(["check", "--json"] + EXAMPLE_FILES[:1])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"]
        assert payload[0]["bindings"]

    def test_run_example(self, capsys):
        path = os.path.join(EXAMPLES_DIR, "sumto.lev")
        status = cli_main(["run", path])
        assert status == 0
        assert "5050#" in capsys.readouterr().out

    def test_compile_example(self, capsys):
        path = os.path.join(EXAMPLES_DIR, "unbox_apply.lev")
        status = cli_main(["compile", path])
        assert status == 0
        out = capsys.readouterr().out
        assert "M  code" in out
        assert "17" in out

    def test_check_failure_exit_code(self, capsys, tmp_path):
        bad = tmp_path / "bad.lev"
        bad.write_text("g :: Int\ng = 3#\n")
        status = cli_main(["check", str(bad)])
        assert status == 1


# ---------------------------------------------------------------------------
# REPL
# ---------------------------------------------------------------------------


class TestRepl:
    def test_declare_then_evaluate(self):
        session = Session()
        assert session.repl_input("inc :: Int# -> Int#") == "defined."
        out = session.repl_input("inc n = n +# 1#")
        assert out == "inc :: Int# -> Int#"
        assert session.repl_input("inc 41#") == "42#"

    def test_type_query(self):
        session = Session()
        out = session.repl_input(":t \\x -> x")
        assert "->" in out

    def test_type_query_levity_poly(self):
        session = Session(DriverOptions(explicit_runtime_reps=True))
        out = session.repl_input(":t error")
        assert "String -> a" in out

    def test_error_reported_not_raised(self):
        session = Session()
        out = session.repl_input("notInScope 1#")
        assert "not in scope" in out

    def test_bad_declaration_not_recorded(self):
        session = Session()
        out = session.repl_input("g = missingThing")
        assert "not in scope" in out
        assert session._repl_decls == []

    def test_redefinition_is_last_wins(self):
        session = Session()
        session.repl_input("f = 5")
        out = session.repl_input("f x = x +# 1#")
        assert out == "f :: Int# -> Int#"
        assert session.repl_input("f 41#") == "42#"

    def test_zero_param_binding_usable_as_value(self):
        # Regression: a CAF must evaluate to its value, not an unapplied
        # closure, when referenced from another binding or expression.
        session = Session()
        session.repl_input("a :: Int#")
        session.repl_input("a = 1#")
        session.repl_input("b :: Int#")
        session.repl_input("b = a +# 1#")
        assert session.repl_input("b +# a") == "3#"


# ---------------------------------------------------------------------------
# REPL redefinition / shadowing (rides the unit-granularity pipeline)
# ---------------------------------------------------------------------------


class TestReplRedefinition:
    def test_dependents_see_the_new_scheme_after_redefinition(self):
        session = Session()
        session.repl_input("a :: Int#")
        session.repl_input("a = 1#")
        session.repl_input("b = a +# 1#")
        assert session.repl_input("b") == "2#"
        # Redefine the dependency: references resolve last-wins, checking
        # is dependency-ordered, so 'b' is re-checked against the new 'a'.
        out = session.repl_input("a = 10#")
        assert out == "a :: Int#"
        assert session.repl_input("b") == "11#"

    def test_redefinition_to_incompatible_type_reports_the_dependent(self):
        session = Session()
        session.repl_input("a = 1#")
        session.repl_input("b = a +# 1#")
        # 'a = True' would break dependent 'b'; the decl is rejected and
        # NOT recorded, and the error names the dependent that broke.
        out = session.repl_input("a = True")
        assert "b" in out and "error" in out
        assert session.repl_input("b") == "2#"  # old world still intact

    def test_load_style_multi_decl_input(self):
        session = Session()
        out = session.repl_input(
            "inc :: Int# -> Int#\ninc n = n +# 1#\ntwice x = inc (inc x)\n")
        assert "inc :: Int# -> Int#" in out
        assert "twice :: Int# -> Int#" in out
        assert session.repl_input("twice 40#") == "42#"

    def test_multi_decl_input_may_use_forward_references(self):
        session = Session()
        out = session.repl_input("first = second +# 1#\nsecond :: Int#\n"
                                 "second = 1#")
        assert "first :: Int#" in out
        assert session.repl_input("first") == "2#"


# ---------------------------------------------------------------------------
# Caret snippets
# ---------------------------------------------------------------------------


class TestSnippets:
    def test_caret_lands_on_the_offending_identifier(self):
        # Pinned against the golden nested-scope reproducer: the caret
        # must underline exactly 'missingName' deep inside the binding.
        path = os.path.join(GOLDEN_DIR, "reject_nested_scope.lev")
        source = _read(path)
        check = Session().check(source, "reject_nested_scope.lev")
        rendered = check.pretty(source=source)
        lines = rendered.split("\n")
        [code_at] = [i for i, line in enumerate(lines)
                     if "let j = n -# 1# in missingName j" in line
                     and "|" in line]
        code_line, caret_line = lines[code_at], lines[code_at + 1]
        gutter = code_line.index("|")
        assert caret_line[:gutter + 1].strip() == "|"
        start = caret_line.index("^")
        width = len(caret_line) - start
        code_body = code_line[start:start + width]
        assert code_body == "missingName"
        assert caret_line[start:] == "^" * len("missingName")

    def test_snippet_omitted_without_source(self):
        check = Session().check("g :: Int\ng = 3#\n", "nosrc.lev")
        assert "^" not in check.pretty()
        assert "^" in check.pretty(source="g :: Int\ng = 3#\n")

    def test_cli_check_prints_snippets(self, capsys, tmp_path):
        bad = tmp_path / "bad.lev"
        bad.write_text("g :: Int\ng = unknownThing\n")
        assert cli_main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "^" * len("unknownThing") in out
