"""Lifecycle tests for the session-owned persistent worker pool (ISSUE 6).

``Session`` owns at most one lazily-spawned ``ProcessPoolExecutor`` and
reuses it across ``check_many`` calls; ``pool_stats`` makes every
decision observable.  The scheduling policy (``REPRO_PARALLEL`` ∈
auto/always/never plus the serial cutoff) decides per batch whether the
pool is used at all, and a pool that cannot spawn or breaks mid-batch
degrades to in-process checking without losing results.
"""

import gc

import pytest

from repro.driver import DriverOptions, Session
from repro.driver.batch import (
    _MIN_UNITS_PER_WORKER,
    PARALLEL_MODE_ENV,
    _effective_jobs,
    payload_bytes,
    result_to_payload,
)


def make_corpus(count=10):
    """Small but unit-rich programs (3 dependent bindings per file)."""
    corpus = []
    for index in range(count):
        source = (f"a{index} :: Int\na{index} = {index}\n"
                  f"b{index} :: Int\nb{index} = a{index} + 1\n"
                  f"main :: Int\nmain = b{index} + {index}\n")
        corpus.append((f"p{index}.lev", source))
    return corpus


def _payloads(results):
    return [payload_bytes(result_to_payload(result)) for result in results]


class TestPoolLifecycle:
    def test_pool_reused_across_batches(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV, "always")
        corpus = make_corpus()
        serial = Session().check_many(corpus)

        with Session() as session:
            first = session.check_many(corpus, jobs=2)
            second = session.check_many(corpus, jobs=2)
            assert session.pool_stats["pools_created"] == 1
            assert session.pool_stats["pools_reused"] == 1
            assert session.pool_stats["parallel_batches"] == 2
            assert _payloads(first) == _payloads(second) == _payloads(serial)
            assert session._pool is not None
        assert session._pool is None  # __exit__ closed it

    def test_close_is_idempotent_and_session_survives(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV, "always")
        corpus = make_corpus(6)
        session = Session()
        session.check_many(corpus, jobs=2)
        session.close()
        session.close()
        assert session._pool is None
        # The session is still usable; the next batch respawns the pool.
        results = session.check_many(corpus, jobs=2)
        assert all(result.ok for result in results)
        assert session.pool_stats["pools_created"] == 2
        session.close()

    def test_gc_shuts_down_the_pool(self):
        session = Session()
        executor = session.acquire_pool(2)
        del session
        gc.collect()
        with pytest.raises(RuntimeError):
            executor.submit(len, ())

    def test_pool_replaced_when_grown_or_options_change(self):
        session = Session()
        pool = session.acquire_pool(2)
        assert session.acquire_pool(2) is pool  # same size, same options
        assert session.acquire_pool(1) is pool  # smaller fits too
        grown = session.acquire_pool(4)
        assert grown is not pool
        other = session.acquire_pool(4, DriverOptions(compiled=True))
        assert other is not grown
        assert session.pool_stats["pools_created"] == 3
        assert session.pool_stats["pools_reused"] == 2
        session.close()

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV, "always")
        corpus = make_corpus(6)
        serial = Session().check_many(corpus)
        session = Session()

        def refuse(jobs, options=None):
            raise OSError("no process spawning here")

        monkeypatch.setattr(session, "acquire_pool", refuse)
        results = session.check_many(corpus, jobs=2)
        assert _payloads(results) == _payloads(serial)
        assert session.pool_stats["serial_batches"] == 1
        assert session.pool_stats["parallel_batches"] == 0
        assert session._pool is None

    def test_never_mode_stays_in_process(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV, "never")
        session = Session()
        results = session.check_many(make_corpus(6), jobs=4)
        assert all(result.ok for result in results)
        assert session.pool_stats["serial_batches"] == 1
        assert session._pool is None


class TestSchedulingPolicy:
    """`_effective_jobs` is the whole policy; drive it directly."""

    def _cpus(self, monkeypatch, count):
        import repro.driver.batch as batch
        monkeypatch.setattr(batch.os, "cpu_count", lambda: count)

    def test_jobs_one_is_always_serial(self, monkeypatch):
        self._cpus(monkeypatch, 8)
        assert _effective_jobs(1, 1000, 100) == 1

    def test_auto_serial_on_one_cpu(self, monkeypatch):
        self._cpus(monkeypatch, 1)
        assert _effective_jobs(8, 1000, 100) == 1

    def test_auto_serial_for_single_file(self, monkeypatch):
        self._cpus(monkeypatch, 8)
        assert _effective_jobs(8, 1000, 1) == 1

    def test_auto_caps_at_cpu_count(self, monkeypatch):
        self._cpus(monkeypatch, 2)
        assert _effective_jobs(8, 1000, 100) == 2

    def test_auto_full_fanout_on_big_batches(self, monkeypatch):
        self._cpus(monkeypatch, 8)
        pending = 4 * _MIN_UNITS_PER_WORKER
        assert _effective_jobs(4, pending, 40) == 4

    def test_auto_sheds_workers_on_small_batches(self, monkeypatch):
        self._cpus(monkeypatch, 8)
        assert _effective_jobs(4, 2 * _MIN_UNITS_PER_WORKER, 40) == 2
        assert _effective_jobs(4, 1, 40) == 1

    def test_always_bypasses_the_cutoff(self, monkeypatch):
        self._cpus(monkeypatch, 1)
        monkeypatch.setenv(PARALLEL_MODE_ENV, "always")
        assert _effective_jobs(8, 1, 1) == 8

    def test_never_bypasses_everything(self, monkeypatch):
        self._cpus(monkeypatch, 8)
        monkeypatch.setenv(PARALLEL_MODE_ENV, "never")
        assert _effective_jobs(8, 1000, 100) == 1
