"""Unit tests for the concrete-syntax frontend (lexer + parser)."""

import pytest

from repro.core.errors import ParseError
from repro.core.kinds import (
    ArrowKind,
    CONSTRAINT,
    REP_KIND,
    TYPE_INT,
    TYPE_LIFTED,
    TypeKind,
)
from repro.core.rep import DOUBLE_REP, INT_REP, RepVar, SumRep, TupleRep
from repro.frontend import parse_expr, parse_module, parse_scheme, parse_type
from repro.frontend.lexer import tokenize
from repro.surface.ast import (
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    FunBind,
    TypeSig,
)
from repro.surface.types import (
    Binder,
    BOOL_TY,
    ClassConstraint,
    ForAllTy,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    QualTy,
    TyApp,
    TyVar,
    UnboxedTupleTy,
    fun,
)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


def kinds_of(source):
    return [t.kind for t in tokenize(source)]


class TestLexer:
    def test_identifiers_and_hashes(self):
        tokens = tokenize("sumTo# Int# x' _ignore")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("varid", "sumTo#"), ("conid", "Int#"), ("varid", "x'"),
            ("varid", "_ignore")]

    def test_literals(self):
        tokens = tokenize('42 7# 2.5## "hi\\n" \'c\'')
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("int", 42), ("inthash", 7), ("doublehash", 2.5),
            ("string", "hi\n"), ("char", "c")]

    def test_unboxed_tuple_brackets(self):
        assert kinds_of("(# Int#, a #)") == [
            "lhash", "conid", "comma", "varid", "rhash", "eof"]
        assert kinds_of("(# #)") == ["lhash", "rhash", "eof"]

    def test_operator_section_is_not_lhash(self):
        # '(' directly followed by a symbolic operator must stay a paren.
        assert kinds_of("(+#)") == ["lparen", "symbol", "rparen", "eof"]

    def test_comments(self):
        assert kinds_of("x -- trailing\n{- block {- nested -} -} y") == [
            "varid", "varid", "eof"]

    def test_spans_are_one_based(self):
        token = tokenize("  foo")[0]
        assert (token.line, token.column) == (1, 3)
        token = tokenize("a\n  bar")[1]
        assert (token.line, token.column) == (2, 3)

    def test_boxed_fractional_literal_rejected(self):
        with pytest.raises(ParseError):
            tokenize("2.5")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')


# ---------------------------------------------------------------------------
# Types and kinds
# ---------------------------------------------------------------------------


class TestTypes:
    def test_explicit_telescope(self):
        type_ = parse_type(
            "forall (r :: Rep) (a :: Type) (b :: TYPE r). (a -> b) -> a -> b")
        assert isinstance(type_, ForAllTy)
        assert type_.binders == (
            Binder("r", REP_KIND),
            Binder("a", TYPE_LIFTED),
            Binder("b", TypeKind(RepVar("r"))))
        b = TyVar("b", TypeKind(RepVar("r")))
        a = TyVar("a", TYPE_LIFTED)
        assert type_.body == fun(FunTy(a, b), a, b)

    def test_implicit_quantification_in_occurrence_order(self):
        scheme = parse_scheme("(b -> a) -> b")
        assert [name for name, _ in scheme.type_binders] == ["b", "a"]
        assert all(kind == TYPE_LIFTED for _, kind in scheme.type_binders)

    def test_concrete_kinds(self):
        type_ = parse_type("forall (a :: TYPE IntRep). a -> Int")
        assert type_.binders[0].kind == TYPE_INT

    def test_tuple_and_sum_reps(self):
        type_ = parse_type(
            "forall (a :: TYPE TupleRep [IntRep, DoubleRep]). a")
        assert type_.binders[0].kind == TypeKind(
            TupleRep((INT_REP, DOUBLE_REP)))
        type_ = parse_type("forall (a :: TYPE SumRep [IntRep | DoubleRep]). a")
        assert type_.binders[0].kind == TypeKind(
            SumRep((INT_REP, DOUBLE_REP)))

    def test_unboxed_tuple_type(self):
        assert parse_type("(# Int#, Bool #)") == UnboxedTupleTy(
            (INT_HASH_TY, BOOL_TY))
        assert parse_type("(# #)") == UnboxedTupleTy(())

    def test_constraints(self):
        type_ = parse_type("Num a => a -> a")
        assert isinstance(type_, ForAllTy)
        assert isinstance(type_.body, QualTy)
        assert type_.body.constraints == (
            ClassConstraint("Num", TyVar("a")),)
        type_ = parse_type("(Num a, Eq a) => a")
        assert len(type_.body.constraints) == 2

    def test_type_application(self):
        type_ = parse_type("Maybe (Maybe Int)")
        assert isinstance(type_, TyApp)
        assert isinstance(type_.argument, TyApp)

    def test_list_and_pair_tycons(self):
        assert parse_type("[] Int").pretty() == "[] Int"
        assert parse_type("(,) Int Bool").pretty() == "(,) Int Bool"

    def test_arrow_kind(self):
        type_ = parse_type("forall (f :: Type -> Type). f")
        assert type_.binders[0].kind == ArrowKind(TYPE_LIFTED, TYPE_LIFTED)

    def test_constraint_kind_parses(self):
        type_ = parse_type("forall (c :: Constraint). Int")
        assert type_.binders[0].kind == CONSTRAINT

    def test_unknown_tycon_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_type("Nonexistent")

    def test_unbound_rep_var_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_type("forall (a :: TYPE r). a")

    def test_rep_var_used_as_type_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_type("forall (r :: Rep). r -> Int")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class TestExpressions:
    def test_application_is_left_nested(self):
        assert parse_expr("f x y") == EApp(EApp(EVar("f"), EVar("x")),
                                           EVar("y"))

    def test_operator_precedence(self):
        # *# binds tighter than +#.
        expr = parse_expr("a +# b *# c")
        expected = EApp(EApp(EVar("+#"), EVar("a")),
                        EApp(EApp(EVar("*#"), EVar("b")), EVar("c")))
        assert expr == expected

    def test_dollar_is_right_associative_and_loose(self):
        expr = parse_expr("f $ g $ h x")
        inner = EApp(EApp(EVar("$"), EVar("g")),
                     EApp(EVar("h"), EVar("x")))
        assert expr == EApp(EApp(EVar("$"), EVar("f")), inner)

    def test_operator_section_name(self):
        assert parse_expr("(+#) x y") == EApp(EApp(EVar("+#"), EVar("x")),
                                              EVar("y"))

    def test_lambda_with_annotation(self):
        expr = parse_expr("\\(x :: Int#) y -> x")
        assert expr == ELam("x", ELam("y", EVar("x")), INT_HASH_TY)

    def test_let_both_forms(self):
        plain = parse_expr("let x = 1 in x")
        assert plain == ELet("x", ELitInt(1), EVar("x"))
        signed = parse_expr("let x :: Int = 1 in x")
        printed = parse_expr("let x :: Int; x = 1 in x")
        assert signed == printed
        assert signed.signature == INT_TY

    def test_if_and_bools(self):
        expr = parse_expr("if True then 1 else 2")
        assert expr == EIf(EBool(True), ELitInt(1), ELitInt(2))

    def test_case_with_literal_and_wildcard(self):
        expr = parse_expr("case n of { 1# -> a; _ -> b }")
        assert isinstance(expr, ECase)
        assert [a.constructor for a in expr.alternatives] == ["1#", "_"]

    def test_case_constructor_binders(self):
        expr = parse_expr("case b of { I# x -> x }")
        assert expr.alternatives[0].binders == ("x",)

    def test_case_as_left_operand_of_infix(self):
        expr = parse_expr("case c of { I# x -> x } +# 1#")
        assert isinstance(expr, EApp)
        assert expr.function.function == EVar("+#")
        assert isinstance(expr.function.argument, ECase)

    def test_case_unboxed_tuple_pattern(self):
        expr = parse_expr("case p of { (# q, r #) -> q }")
        assert expr.alternatives[0].constructor == "(#,#)"
        assert expr.alternatives[0].binders == ("q", "r")

    def test_unboxed_tuple_expression(self):
        assert parse_expr("(# 1#, 2# #)") == EUnboxedTuple(
            (ELitIntHash(1), ELitIntHash(2)))

    def test_annotation(self):
        expr = parse_expr('3# :: Int#')
        assert expr == EAnn(ELitIntHash(3), INT_HASH_TY)

    def test_string_and_unit(self):
        assert parse_expr('error "boom"') == EApp(EVar("error"),
                                                  ELitString("boom"))
        assert parse_expr("()") == EVar("()")

    def test_double_hash_literal(self):
        assert parse_expr("2.5## +## 1.5##") == EApp(
            EApp(EVar("+##"), ELitDoubleHash(2.5)), ELitDoubleHash(1.5))


# ---------------------------------------------------------------------------
# Modules and declarations
# ---------------------------------------------------------------------------


SUM_TO = """\
sumTo# :: Int# -> Int# -> Int#
sumTo# acc n = case n ==# 0# of { 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }

main :: Int#
main = sumTo# 0# 100#
"""


class TestModules:
    def test_declarations_and_spans(self):
        parsed = parse_module(SUM_TO, "sumto.lev")
        module = parsed.module
        assert set(module.signatures()) == {"sumTo#", "main"}
        assert set(module.bindings()) == {"sumTo#", "main"}
        assert module.signatures()["sumTo#"] == fun(
            INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)
        span = parsed.span_of_binding("main")
        assert (span.line, span.column) == (5, 1)
        sig_span = parsed.decl_spans[("sig", "sumTo#")]
        assert (sig_span.line, sig_span.column) == (1, 1)

    def test_multiline_continuation(self):
        parsed = parse_module(
            "f :: Int ->\n"
            "     Int\n"
            "f x =\n"
            "  plusInt x\n"
            "    1\n")
        assert parsed.module.signatures()["f"] == fun(INT_TY, INT_TY)
        bind = parsed.module.bindings()["f"]
        assert bind.rhs == EApp(EApp(EVar("plusInt"), EVar("x")), ELitInt(1))

    def test_signature_does_not_capture_next_declaration(self):
        # Regression: the context backtrack must not leak the next line's
        # binding name into the implicit forall.
        parsed = parse_module("f :: Int# -> Int#\nf x = x\n")
        assert parsed.module.signatures()["f"] == fun(INT_HASH_TY,
                                                      INT_HASH_TY)

    def test_column_one_starts_a_declaration(self):
        with pytest.raises(ParseError):
            parse_module("f = plusInt 1\n2\n")  # '2' cannot start a decl

    def test_operator_signature(self):
        parsed = parse_module("(!!#) :: Int# -> Int#\n(!!#) x = x\n")
        assert "!!#" in parsed.module.signatures()

    def test_parse_error_has_position(self):
        with pytest.raises(ParseError) as info:
            parse_module("f = \n")
        assert info.value.line >= 1
        assert info.value.column >= 1

    def test_empty_module(self):
        assert parse_module("-- nothing here\n").module.decls == ()


# ---------------------------------------------------------------------------
# Incremental (block-memoised) parsing equivalence
# ---------------------------------------------------------------------------


class TestIncrementalParsing:
    """parse_module_incremental must be observably identical to
    parse_module — same decls, same spans, same expression-span table —
    with or without a warm memo."""

    CASES = [
        "f :: Int#\nf = 1#\n",
        # leading comments, blank lines, trailing trivia
        "-- leading comment\n\nf = 1#\n\n-- trailing\n",
        # a block comment spanning lines with column-1 text inside it
        "a = 1#\n{- not\na decl\n-}\nb = 2#\n",
        # nested block comments
        "{- outer {- inner -} still -}\nc :: Int#\nc = 3#\n",
        # string containing comment openers and a column-1-looking quote
        's = "{- not a comment -} -- nor this"\n',
        # char literals and primes in identifiers
        "tail' :: Int# -> Int#\ntail' x = x\nch = 'a'\nesc = '\\n'\n",
        # multi-line declarations (continuation lines indented)
        "long :: Int#\nlong =\n  1#\n    +# 2#\n\nnext = long\n",
        # operators at column 1 via section declaration form
        "(+!) :: Int# -> Int# -> Int#\n(+!) x y = x +# y\n",
        # duplicate definitions (last wins, both parsed)
        "v = 1#\nv = 2#\n",
        # *identical* duplicate blocks: the memo must not share AST nodes
        # within one module (expression spans are id()-keyed)
        "w = 1#\nw = 1#\n",
    ]

    @staticmethod
    def _observables(parsed):
        return (
            parsed.module.pretty(),
            [type(d).__name__ for d in parsed.module.decls],
            parsed.decl_span_list,
            dict(parsed.decl_spans),
            sorted(parsed.expr_spans.values(),
                   key=lambda s: (s.line, s.column, s.end_line, s.end_column)),
        )

    @pytest.mark.parametrize("source", CASES)
    def test_matches_whole_module_parse(self, source):
        from repro.frontend.parser import parse_module_incremental

        memo = {}
        whole = parse_module(source, "case.lev")
        cold = parse_module_incremental(source, "case.lev", memo=memo)
        warm = parse_module_incremental(source, "case.lev", memo=memo)
        for incremental in (cold, warm):
            assert self._observables(incremental) == self._observables(whole)

    def test_examples_and_golden_corpora_match(self):
        import glob
        import os

        from repro.frontend.parser import parse_module_incremental

        here = os.path.dirname(os.path.abspath(__file__))
        paths = sorted(
            glob.glob(os.path.join(here, "golden", "**", "*.lev"),
                      recursive=True)
            + glob.glob(os.path.join(here, os.pardir, "examples", "*.lev")))
        assert paths
        memo = {}
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                whole = parse_module(source, path)
            except ParseError as exc:
                with pytest.raises(ParseError) as caught:
                    parse_module_incremental(source, path, memo=memo)
                assert str(caught.value) == str(exc)
                continue
            incremental = parse_module_incremental(source, path, memo=memo)
            assert self._observables(incremental) == self._observables(whole)

    def test_memoised_blocks_skip_reparsing(self):
        from repro.frontend.parser import parse_module_incremental

        memo = {}
        parse_module_incremental("a = 1#\n\nb = a\n", memo=memo)
        blocks_before = set(memo)
        # Editing 'b' must only add the new b-block to the memo.
        parse_module_incremental("a = 1#\n\nb = a +# 1#\n", memo=memo)
        added = set(memo) - blocks_before
        assert added == {"b = a +# 1#\n"}

    def test_parse_error_positions_are_absolute(self):
        from repro.frontend.parser import parse_module_incremental

        source = "fine = 1#\n\nbroken = \n"
        with pytest.raises(ParseError) as exc:
            parse_module_incremental(source, "err.lev", memo={})
        whole_error = None
        try:
            parse_module(source, "err.lev")
        except ParseError as caught:
            whole_error = caught
        assert (exc.value.line, exc.value.column) == \
            (whole_error.line, whole_error.column)
