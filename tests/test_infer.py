"""Tests for surface types, unification, inference and the levity checks (§5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import (
    LevityError,
    LevityPolymorphicBinder,
    OccursCheckError,
    ScopeError,
    TypeCheckError,
    UnificationError,
)
from repro.core.kinds import REP_KIND, TYPE_LIFTED, TypeKind
from repro.core.rep import DOUBLE_REP, INT_REP, LIFTED, RepVar, TupleRep
from repro.infer import (
    InferOptions,
    Inferencer,
    Scheme,
    TypeEnv,
    UnifierState,
    infer_binding,
    infer_expr,
)
from repro.surface.ast import (
    Alternative,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    apply,
)
from repro.surface.prelude import (
    COMPOSE_SCHEME,
    DOLLAR_SCHEME,
    ERROR_SCHEME,
    prelude_env,
)
from repro.surface.types import (
    BOOL_TY,
    Binder,
    DOUBLE_HASH_TY,
    ForAllTy,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    MAYBE_TY,
    STRING_TY,
    TyApp,
    TyVar,
    UnboxedTupleTy,
    fun,
    kind_of_type,
    rep_of_type,
    rep_var_kind,
)

ENV = prelude_env()


class TestSurfaceTypeKinding:
    def test_int_hash_kind(self):
        assert kind_of_type(INT_HASH_TY).pretty() == "TYPE IntRep"

    def test_arrow_over_unboxed_is_lifted(self):
        assert kind_of_type(fun(INT_HASH_TY, DOUBLE_HASH_TY)) == TYPE_LIFTED

    def test_maybe_int_kind(self):
        assert kind_of_type(TyApp(MAYBE_TY, INT_TY)) == TYPE_LIFTED

    def test_maybe_int_hash_is_ill_kinded(self):
        from repro.core.errors import KindError
        with pytest.raises(KindError):
            kind_of_type(TyApp(MAYBE_TY, INT_HASH_TY))

    def test_unboxed_tuple_kind_carries_component_reps(self):
        kind = kind_of_type(UnboxedTupleTy((INT_TY, INT_HASH_TY)))
        assert isinstance(kind, TypeKind)
        assert kind.rep == TupleRep([LIFTED, INT_REP])

    def test_empty_unboxed_tuple(self):
        assert rep_of_type(UnboxedTupleTy(())) == TupleRep(())

    def test_rep_of_type(self):
        assert rep_of_type(DOUBLE_HASH_TY) == DOUBLE_REP
        assert rep_of_type(INT_TY) == LIFTED


class TestUnification:
    def test_unify_solves_rep_via_kind(self):
        """Unifying α :: TYPE ρ with Int# solves ρ := IntRep (§5.2)."""
        state = UnifierState()
        alpha = state.fresh_type_uvar()
        state.unify_types(alpha, INT_HASH_TY)
        assert state.zonk_type(alpha) == INT_HASH_TY
        kind = state.zonk_kind(alpha.kind)
        assert kind == TypeKind(INT_REP)

    def test_unify_rejects_rep_mismatch(self):
        state = UnifierState()
        with pytest.raises(UnificationError):
            state.unify_reps(INT_REP, DOUBLE_REP)

    def test_unify_tuple_reps_componentwise(self):
        state = UnifierState()
        rho = state.fresh_rep_uvar()
        state.unify_reps(TupleRep([rho, LIFTED]), TupleRep([INT_REP, LIFTED]))
        assert state.zonk_rep(rho) == INT_REP

    def test_occurs_check(self):
        state = UnifierState()
        alpha = state.fresh_type_uvar(TYPE_LIFTED)
        with pytest.raises(OccursCheckError):
            state.unify_types(alpha, fun(alpha, INT_TY))

    def test_unify_int_with_bool_fails(self):
        state = UnifierState()
        with pytest.raises(UnificationError):
            state.unify_types(INT_TY, BOOL_TY)

    def test_zonk_is_idempotent(self):
        state = UnifierState()
        alpha = state.fresh_type_uvar()
        state.unify_types(alpha, fun(INT_TY, INT_HASH_TY))
        once = state.zonk_type(alpha)
        assert state.zonk_type(once) == once

    def test_zonk_substitutes_solved_rep_in_forall_binder_kind(self):
        """Zonking must reach *binder kinds* of a forall, not just the body.

        Regression test: with ``ρ`` a solved rep uvar, zonking
        ``forall (a :: TYPE ρ). a -> a`` must produce binder kind
        ``TYPE IntRep`` (the seed solver only zonked the body).
        """
        state = UnifierState()
        rho = state.fresh_rep_uvar()
        state.unify_reps(rho, INT_REP)
        body_var = TyVar("a", TypeKind(rho))
        sigma = ForAllTy((Binder("a", TypeKind(rho)),),
                         fun(body_var, body_var))
        zonked = state.zonk_type(sigma)
        assert zonked.binders[0].kind == TypeKind(INT_REP)
        assert zonked.body == fun(TyVar("a", TypeKind(INT_REP)),
                                  TyVar("a", TypeKind(INT_REP)))

    def test_kind_occurs_check(self):
        """κ ~ (κ -> Type) must raise at bind time, not loop in zonk_kind."""
        from repro.core.kinds import ArrowKind
        state = UnifierState()
        kappa = state.fresh_kind_uvar()
        with pytest.raises(OccursCheckError):
            state.unify_kinds(kappa, ArrowKind(kappa, TYPE_LIFTED))

    def test_variable_variable_chains_collapse(self):
        """A chain α0 ~ α1 ~ … ~ αn zonks every link to the one solution."""
        state = UnifierState()
        uvars = [state.fresh_type_uvar() for _ in range(50)]
        for left, right in zip(uvars, uvars[1:]):
            state.unify_types(left, right)
        state.unify_types(uvars[25], INT_TY)
        for var in uvars:
            assert state.zonk_type(var) == INT_TY


class TestInference:
    def test_literals(self):
        assert infer_expr(ELitInt(3), env=ENV) == INT_TY
        assert infer_expr(ELitIntHash(3), env=ENV) == INT_HASH_TY
        assert infer_expr(ELitDoubleHash(2.5), env=ENV) == DOUBLE_HASH_TY
        assert infer_expr(ELitString("hi"), env=ENV) == STRING_TY
        assert infer_expr(EBool(True), env=ENV) == BOOL_TY

    def test_primop_application(self):
        expr = apply(EVar("+#"), ELitIntHash(3), ELitIntHash(4))
        assert infer_expr(expr, env=ENV) == INT_HASH_TY

    def test_boxing_constructor(self):
        assert infer_expr(EApp(EVar("I#"), ELitIntHash(1)), env=ENV) == INT_TY

    def test_unsigned_binding_defaults_to_lifted(self):
        """f x = x infers forall (a :: Type). a -> a, never the rep-poly type."""
        result = infer_binding("f", ["x"], EVar("x"), env=ENV)
        scheme = result.scheme
        assert not scheme.is_levity_polymorphic()
        assert len(scheme.type_binders) == 1
        (_, kind), = scheme.type_binders
        assert kind == TYPE_LIFTED
        assert result.defaulted_rep_vars  # a rep variable was defaulted

    def test_const_function_defaults_both_variables(self):
        result = infer_binding("const2", ["x", "y"], EVar("x"), env=ENV)
        assert len(result.scheme.type_binders) == 2
        assert all(kind == TYPE_LIFTED
                   for _, kind in result.scheme.type_binders)

    def test_declared_levity_polymorphic_error_wrapper_is_accepted(self):
        sig = ForAllTy(
            (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
            fun(STRING_TY, TyVar("a", rep_var_kind("r"))))
        rhs = EApp(EVar("error"),
                   apply(EVar("appendString"), ELitString("Program error "),
                         EVar("s")))
        result = infer_binding("myError", ["s"], rhs, signature=sig, env=ENV)
        assert result.scheme.is_levity_polymorphic()
        assert result.ok

    def test_declared_levity_polymorphic_identity_is_rejected(self):
        sig = ForAllTy(
            (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
            fun(TyVar("a", rep_var_kind("r")), TyVar("a", rep_var_kind("r"))))
        with pytest.raises(LevityError):
            infer_binding("f", ["x"], EVar("x"), signature=sig, env=ENV)

    def test_ablation_generalise_reps_produces_uncompilable_scheme(self):
        options = InferOptions(generalise_reps=True, run_levity_check=False)
        result = infer_binding("g", [], ELam("x", EVar("x")), env=ENV,
                               options=options)
        assert result.scheme.is_levity_polymorphic()

    def test_ablation_scheme_is_rejected_when_checked(self):
        options = InferOptions(generalise_reps=True, run_levity_check=True)
        with pytest.raises(LevityError):
            infer_binding("g", ["x"], EVar("x"), env=ENV, options=options)

    def test_dollar_with_unboxed_result(self):
        unbox = ECase(EVar("b"), [Alternative("I#", ["x"], EVar("x"))])
        result = infer_binding("unboxInt", ["b"], unbox,
                               signature=fun(INT_TY, INT_HASH_TY), env=ENV)
        env2 = ENV.bind("unboxInt", result.scheme)
        expr = apply(EVar("$"), EVar("unboxInt"), ELitInt(42))
        assert infer_expr(expr, env=env2) == INT_HASH_TY

    def test_dollar_with_unboxed_argument_is_rejected(self):
        """($)'s argument must be lifted: negateInt# $ 3# is ill-typed."""
        expr = apply(EVar("$"), EVar("negateInt#"), ELitIntHash(3))
        with pytest.raises(TypeCheckError):
            infer_expr(expr, env=ENV)

    def test_compose_with_unboxed_result(self):
        unbox = ECase(EVar("b"), [Alternative("I#", ["x"], EVar("x"))])
        result = infer_binding("unboxInt", ["b"], unbox,
                               signature=fun(INT_TY, INT_HASH_TY), env=ENV)
        env2 = ENV.bind("unboxInt", result.scheme)
        expr = apply(EVar("."), EVar("unboxInt"),
                     EApp(EVar("plusInt"), ELitInt(1)))
        assert infer_expr(expr, env=env2) == fun(INT_TY, INT_HASH_TY)

    def test_error_usable_at_unboxed_type_via_annotation(self):
        expr = EAnn(EApp(EVar("error"), ELitString("boom")), INT_HASH_TY)
        assert infer_expr(expr, env=ENV) == INT_HASH_TY

    def test_undefined_at_unboxed_tuple_type(self):
        target = UnboxedTupleTy((INT_HASH_TY, INT_TY))
        assert infer_expr(EAnn(EVar("undefined"), target), env=ENV) == target

    def test_signature_checked_recursion(self):
        sig = fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)
        rhs = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                    [Alternative("1#", [], EVar("acc")),
                     Alternative("_", [],
                                 apply(EVar("sumTo#"),
                                       apply(EVar("+#"), EVar("acc"),
                                             EVar("n")),
                                       apply(EVar("-#"), EVar("n"),
                                             ELitIntHash(1))))])
        result = infer_binding("sumTo#", ["acc", "n"], rhs, signature=sig,
                               env=ENV)
        assert result.scheme.body == sig

    def test_bTwice_lifted_signature_accepted(self):
        sig = ForAllTy((Binder("a", TYPE_LIFTED),),
                       fun(BOOL_TY, TyVar("a"), fun(TyVar("a"), TyVar("a")),
                           TyVar("a")))
        rhs = EIf(EVar("b"), EApp(EVar("f"), EApp(EVar("f"), EVar("x"))),
                  EVar("x"))
        result = infer_binding("bTwice", ["b", "x", "f"], rhs, signature=sig,
                               env=ENV)
        assert result.ok

    def test_bTwice_levity_polymorphic_signature_rejected(self):
        a = TyVar("a", rep_var_kind("r"))
        sig = ForAllTy((Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
                       fun(BOOL_TY, a, fun(a, a), a))
        rhs = EIf(EVar("b"), EApp(EVar("f"), EApp(EVar("f"), EVar("x"))),
                  EVar("x"))
        with pytest.raises(LevityError):
            infer_binding("bTwice", ["b", "x", "f"], rhs, signature=sig,
                          env=ENV)

    def test_let_with_signature(self):
        expr = ELet("one", ELitIntHash(1),
                    apply(EVar("+#"), EVar("one"), ELitIntHash(2)),
                    signature=INT_HASH_TY)
        assert infer_expr(expr, env=ENV) == INT_HASH_TY

    def test_if_requires_bool(self):
        with pytest.raises(TypeCheckError):
            infer_expr(EIf(ELitInt(1), ELitInt(2), ELitInt(3)), env=ENV)

    def test_if_branches_must_agree(self):
        with pytest.raises(UnificationError):
            infer_expr(EIf(EBool(True), ELitInt(1), ELitIntHash(1)), env=ENV)

    def test_unknown_variable(self):
        with pytest.raises(ScopeError):
            infer_expr(EVar("nonexistent"), env=ENV)

    def test_unboxed_tuple_inference(self):
        expr = EUnboxedTuple((ELitInt(1), ELitIntHash(2),
                              ELitDoubleHash(3.0)))
        inferred = infer_expr(expr, env=ENV)
        assert inferred == UnboxedTupleTy((INT_TY, INT_HASH_TY,
                                           DOUBLE_HASH_TY))

    def test_case_on_maybe(self):
        expr = ECase(EApp(EVar("Just"), ELitInt(5)),
                     [Alternative("Just", ["x"], EVar("x")),
                      Alternative("Nothing", [], ELitInt(0))])
        assert infer_expr(expr, env=ENV) == INT_TY

    def test_signature_with_too_many_parameters_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_binding("f", ["x", "y"], EVar("x"),
                          signature=fun(INT_TY, INT_TY), env=ENV)

    def test_levity_report_collect_mode(self):
        sig = ForAllTy(
            (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
            fun(TyVar("a", rep_var_kind("r")), TyVar("a", rep_var_kind("r"))))
        options = InferOptions(collect_levity_violations=True)
        result = infer_binding("f", ["x"], EVar("x"), signature=sig, env=ENV,
                               options=options)
        assert not result.ok
        assert result.levity_report.violations


class TestPreludeSchemes:
    def test_error_scheme_is_levity_polymorphic(self):
        assert ERROR_SCHEME.is_levity_polymorphic()

    def test_dollar_scheme_argument_is_lifted(self):
        # forall r a (b :: TYPE r). (a -> b) -> a -> b : the 'a' binder is Type
        kinds = dict(DOLLAR_SCHEME.type_binders)
        assert kinds["a"] == TYPE_LIFTED
        assert kinds["b"] != TYPE_LIFTED

    def test_compose_scheme_only_result_generalised(self):
        kinds = dict(COMPOSE_SCHEME.type_binders)
        assert kinds["a"] == TYPE_LIFTED and kinds["b"] == TYPE_LIFTED
        assert kinds["c"] != TYPE_LIFTED

    def test_scheme_roundtrip_through_surface_type(self):
        roundtripped = Scheme.from_type(DOLLAR_SCHEME.to_type())
        assert roundtripped.rep_binders == DOLLAR_SCHEME.rep_binders
        assert roundtripped.body == DOLLAR_SCHEME.body


class TestDefaultingProperties:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_unsigned_single_param_functions_never_infer_levity_polymorphism(
            self, n):
        """Property: inference never produces a levity-polymorphic scheme."""
        body = EVar("x") if n % 2 == 0 else ELitInt(n)
        result = infer_binding(f"f{n}", ["x"], body, env=ENV)
        assert not result.scheme.is_levity_polymorphic()

    @given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=3,
                    unique=True))
    @settings(max_examples=20, deadline=None)
    def test_all_defaulted_binders_have_kind_type(self, params):
        result = infer_binding("f", params, EVar(params[0]), env=ENV)
        for _, kind in result.scheme.type_binders:
            assert kind == TYPE_LIFTED
