"""Per-program translation validation (:mod:`repro.validate`).

Three layers are pinned here:

* :func:`repro.validate.validate_term` — obligation discharge along real
  L traces, agreement on ⊥, and *first-diverging-step* reporting when the
  compiler is (deliberately) sabotaged;
* the runner surface — files, project directories and skip reasons, plus
  the ``python -m repro validate`` exit-code contract (nonzero only on
  genuine divergence);
* the session wiring — ``DriverOptions(validate=True)`` attaches a
  report to every cross-checked ``RunResult``.
"""

import dataclasses
import json
import os

import pytest

from repro.driver import DriverOptions, Session
from repro.lang_l import Fix, Lit, PrimOp
from repro.validate import ValidationReport, validate_paths, validate_term

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

SUM_TO = (
    "sumTo# :: Int# -> Int# -> Int#\n"
    "sumTo# acc n = case n <=# 0# of "
    "{ 1# -> acc; _ -> sumTo# (acc +# n) (n -# 1#) }\n"
    "main :: Int#\n"
    "main = sumTo# 0# 10#\n")


class TestValidateTerm:
    def test_discharges_obligations_along_a_primop_trace(self):
        term = PrimOp("+#", (PrimOp("*#", (Lit(2), Lit(3))), Lit(4)))
        report = validate_term(term)
        assert report.ok and report.engaged
        assert report.l_steps >= 2
        assert report.obligations_checked == report.l_steps
        assert report.first_divergence is None
        assert report.machine_agrees is True
        assert report.machine_value == "10"

    def test_agreement_on_bottom(self):
        # quot-by-zero: L steps to ⊥ (S_PRIMBOT), the machine aborts —
        # that is agreement, not a divergence.
        term = PrimOp("quotInt#", (Lit(1), Lit(0)))
        report = validate_term(term)
        assert report.ok, report.pretty()
        assert report.l_value == "⊥"
        assert report.machine_value == "error"
        assert report.machine_agrees is True

    def test_align_steps_caps_the_sweep_not_the_answer(self):
        term = PrimOp("+#", (PrimOp("+#", (Lit(1), Lit(2))),
                             PrimOp("+#", (Lit(3), Lit(4)))))
        report = validate_term(term, align_steps=1)
        assert report.ok
        assert report.obligations_checked == 1
        assert report.machine_agrees is True

    def test_sabotaged_compiler_reports_the_first_diverging_step(
            self, monkeypatch):
        # Simulate a miscompilation: every compiled `Lit 3` becomes
        # `MLit 4`.  The trace PrimOp(+#,1,2) -> Lit 3 then fails its
        # §6.3 obligation at step 0, and the report localises it.
        import repro.validate.alignment as alignment
        from repro.lang_m.syntax import MLit

        real = alignment.compile_expr

        def sabotaged(expr, ctx):
            result = real(expr, ctx)
            if isinstance(expr, Lit) and expr.value == 3:
                return dataclasses.replace(result, code=MLit(4))
            return result

        monkeypatch.setattr(alignment, "compile_expr", sabotaged)
        report = validate_term(PrimOp("+#", (Lit(1), Lit(2))))
        assert not report.ok
        assert report.first_divergence == 0
        assert report.failed and "not joinable" in report.failed[0].reason
        assert "first diverging step is 0" in report.reason
        assert "FAILED" in report.pretty()

    def test_nontermination_is_a_skip_not_a_verdict(self):
        # `(fix f. \x. f x) (I# 0)` spins forever; the validator cannot
        # align a trace that never settles, and says so instead of
        # rendering a verdict.
        from repro.lang_l.syntax import App, INT, Var, arrow, boxed_int, lam

        omega = Fix("f", arrow(INT, INT),
                    lam("x", INT, App(Var("f"), Var("x"))))
        report = validate_term(App(omega, boxed_int(0)), eval_steps=50)
        assert not report.engaged
        assert "did not settle" in report.reason


class TestRunnerSurface:
    def test_example_file_validates(self):
        path = os.path.join(EXAMPLES, "sum_to.lev")
        (report,) = validate_paths([path])
        assert report.ok and report.engaged
        assert report.machine_agrees is True
        document = report.as_dict()
        assert document["first_divergence"] is None
        json.dumps(document)  # machine-readable

    def test_out_of_fragment_entry_is_skipped_with_a_reason(self, tmp_path):
        path = tmp_path / "bool.lev"
        path.write_text("main :: Bool\nmain = True\n", encoding="utf-8")
        (report,) = validate_paths([str(path)])
        assert not report.engaged
        assert "out of the L fragment" in report.reason
        assert "skipped" in report.pretty()

    def test_project_directory_goes_through_the_module_dag(self, tmp_path):
        (tmp_path / "lib.lev").write_text(
            "module Lib where\n"
            "twice# :: Int# -> Int#\n"
            "twice# n = n +# n\n", encoding="utf-8")
        (tmp_path / "main.lev").write_text(
            "module Main where\n"
            "import Lib\n"
            "main :: Int#\n"
            "main = twice# 21#\n", encoding="utf-8")
        (report,) = validate_paths([str(tmp_path)])
        assert report.ok and report.engaged, report.pretty()
        assert report.machine_value == "42"

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        good = os.path.join(EXAMPLES, "sum_to.lev")
        skipped = tmp_path / "skip.lev"
        skipped.write_text("main :: Bool\nmain = True\n", encoding="utf-8")
        # Skips do not fail the run — only genuine divergence does.
        assert main(["validate", good, str(skipped)]) == 0
        out = capsys.readouterr().out
        assert "1 engaged" in out and "0 divergence(s)" in out
        assert main(["validate", "--json", good]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is True


class TestSessionWiring:
    def test_run_attaches_a_validation_report(self):
        session = Session(DriverOptions(validate=True, align_steps=8))
        result = session.run(SUM_TO, "sum_to.lev")
        assert result.ok and result.machine_agrees is True
        assert isinstance(result.validation, ValidationReport)
        assert result.validation.ok
        assert result.validation.obligations_checked == 8

    def test_bottom_entries_validate_too(self):
        session = Session(DriverOptions(validate=True))
        result = session.run("main :: Int#\nmain = quotInt# 1# 0#\n")
        assert not result.ok
        assert result.machine_agrees is True
        assert result.validation is not None and result.validation.ok

    def test_validation_is_off_by_default(self):
        result = Session().run(SUM_TO, "sum_to.lev")
        assert result.validation is None
