"""Property tests: the pretty printer and the parser are inverses.

Satellites of the frontend PR:

* ``parse(pretty(scheme)) == scheme`` for the explicit
  ``-fprint-explicit-runtime-reps`` rendering;
* the GHCi-default rendering (rep variables defaulted to ``LiftedRep``,
  telescope hidden) parses back to the display-defaulted scheme up to
  alpha-renaming — the parser re-quantifies hidden binders in occurrence
  order, so the comparison canonicalises binder names first;
* lexer/parser fuzzing: arbitrary input either parses or raises
  :class:`~repro.core.errors.ParseError` — never anything else.

Extended by the fuzzing PR with **expression-level** round-trips
(``parse_expr(expr.pretty()) == expr``) over the whole expression grammar,
covering the gaps PR 3's unary-minus work left open: negative literals in
case patterns, and symbolic operators (sections) in *every* position —
binding rhs, let rhs, case alternatives, tuple components — not just the
application spots the operator table can recover.
"""

import string as string_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.core.kinds import TYPE_LIFTED, TypeKind
from repro.core.rep import RepVar
from repro.frontend import parse_expr, parse_module, parse_scheme, parse_type
from repro.infer.schemes import Scheme
from repro.pretty.printer import (
    PrinterOptions,
    default_reps_for_display,
    render_scheme,
)
from repro.surface.ast import (
    Alternative,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitChar,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
)
from repro.surface.prelude import prelude_schemes
from repro.surface.types import (
    BOOL_TY,
    ClassConstraint,
    DOUBLE_HASH_TY,
    ForAllTy,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    MAYBE_TY,
    QualTy,
    STRING_TY,
    SType,
    TyApp,
    TyVar,
    UnboxedTupleTy,
)

EXPLICIT = PrinterOptions(print_explicit_runtime_reps=True)


# ---------------------------------------------------------------------------
# Scheme generator
# ---------------------------------------------------------------------------


@st.composite
def schemes(draw):
    n_reps = draw(st.integers(0, 2))
    rep_names = ("r", "s")[:n_reps]

    n_types = draw(st.integers(0, 3))
    binders = []
    for name in ("a", "b", "c")[:n_types]:
        if rep_names and draw(st.booleans()):
            kind = TypeKind(RepVar(draw(st.sampled_from(rep_names))))
        else:
            kind = TYPE_LIFTED
        binders.append((name, kind))

    atoms = [INT_TY, INT_HASH_TY, DOUBLE_HASH_TY, BOOL_TY, STRING_TY]
    atoms.extend(TyVar(name, kind) for name, kind in binders)
    atom = st.sampled_from(atoms)

    def compound(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: FunTy(*p)),
            children.map(lambda t: TyApp(MAYBE_TY, t)),
            st.lists(children, min_size=0, max_size=3)
            .map(UnboxedTupleTy),
        )

    body = draw(st.recursive(atom, compound, max_leaves=6))

    constraints = ()
    lifted = [name for name, kind in binders if kind == TYPE_LIFTED]
    if lifted and draw(st.booleans()):
        constraints = (ClassConstraint("Num", TyVar(lifted[0])),)

    return Scheme(rep_names, tuple(binders), constraints, body)


# ---------------------------------------------------------------------------
# Alpha canonicalisation (for the display-defaulted comparison)
# ---------------------------------------------------------------------------


def _occurrence_order(scheme):
    """Names of the scheme's type binders in first-occurrence order."""
    bound = {name for name, _ in scheme.type_binders}
    order = []

    def walk(type_):
        if isinstance(type_, TyVar):
            if type_.name in bound and type_.name not in order:
                order.append(type_.name)
        elif isinstance(type_, FunTy):
            walk(type_.argument)
            walk(type_.result)
        elif isinstance(type_, TyApp):
            walk(type_.function)
            walk(type_.argument)
        elif isinstance(type_, UnboxedTupleTy):
            for component in type_.components:
                walk(component)
        elif isinstance(type_, QualTy):
            for constraint in type_.constraints:
                walk(constraint.argument)
            walk(type_.body)
        elif isinstance(type_, ForAllTy):
            walk(type_.body)

    for constraint in scheme.constraints:
        walk(constraint.argument)
    walk(scheme.body)
    # Phantom binders (never occurring) keep their declared order at the end.
    for name, _ in scheme.type_binders:
        if name not in order:
            order.append(name)
    return order


def _occurring_names(scheme):
    out = scheme.body.free_type_vars()
    for constraint in scheme.constraints:
        out = out | constraint.argument.free_type_vars()
    return out


def alpha_canonical(scheme):
    """Rename type binders to _t0, _t1, … in first-occurrence order.

    Phantom binders at kind ``Type`` are dropped: hiding the telescope
    erases them from the default rendering, and quantification over an
    unused lifted variable is unobservable anyway.  Only meaningful for
    rep-binder-free schemes (which is all the default display can produce).
    """
    assert not scheme.rep_binders
    kinds = dict(scheme.type_binders)
    occurring = _occurring_names(scheme)
    mapping = {}
    new_binders = []
    index = 0
    for name in _occurrence_order(scheme):
        if kinds[name] == TYPE_LIFTED and name not in occurring:
            continue
        fresh = f"_t{index}"
        index += 1
        mapping[name] = TyVar(fresh, kinds[name])
        new_binders.append((fresh, kinds[name]))
    constraints = tuple(
        ClassConstraint(c.class_name, c.argument.subst_types(mapping))
        for c in scheme.constraints)
    return Scheme((), tuple(new_binders), constraints,
                  scheme.body.subst_types(mapping))


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestExplicitRoundTrip:
    @given(schemes())
    @settings(max_examples=200, deadline=None)
    def test_explicit_rendering_round_trips_exactly(self, scheme):
        rendered = render_scheme(scheme, EXPLICIT)
        assert parse_scheme(rendered) == scheme

    @given(schemes())
    @settings(max_examples=100, deadline=None)
    def test_scheme_pretty_round_trips_exactly(self, scheme):
        assert parse_scheme(scheme.pretty(explicit_runtime_reps=True)) \
            == scheme

    def test_prelude_schemes_round_trip(self):
        for name, scheme in prelude_schemes().items():
            rendered = render_scheme(scheme, EXPLICIT)
            assert parse_scheme(rendered) == scheme, name


class TestDefaultDisplayRoundTrip:
    @given(schemes())
    @settings(max_examples=200, deadline=None)
    def test_default_rendering_round_trips_up_to_alpha(self, scheme):
        rendered = render_scheme(scheme)
        reparsed = parse_scheme(rendered)
        displayed = default_reps_for_display(scheme)
        assert alpha_canonical(reparsed) == alpha_canonical(displayed)

    @given(schemes())
    @settings(max_examples=100, deadline=None)
    def test_default_rendering_is_a_fixpoint(self, scheme):
        rendered = render_scheme(scheme)
        assert render_scheme(parse_scheme(rendered)) == rendered

    def test_prelude_default_display_round_trips(self):
        for name, scheme in prelude_schemes().items():
            rendered = render_scheme(scheme)
            reparsed = parse_scheme(rendered)
            displayed = default_reps_for_display(scheme)
            assert alpha_canonical(reparsed) == alpha_canonical(displayed), \
                name

    def test_concrete_nonlifted_binder_keeps_telescope(self):
        # The printer gap the round-trip surfaced: a binder at a concrete
        # unboxed kind must not lose its telescope in the default display.
        scheme = parse_scheme("forall (a :: TYPE IntRep). a -> Int")
        rendered = render_scheme(scheme)
        assert "forall" in rendered
        assert parse_scheme(rendered) == scheme


# ---------------------------------------------------------------------------
# Expression round-trips (negative patterns, operator sections, ...)
# ---------------------------------------------------------------------------


#: Symbolic operators whose sections must survive printing anywhere.
_SECTION_NAMES = ("+#", "-#", "*#", "+", "-", "*", "$", ".", "<=#", "&&")
_CONCRETE_TYPES = (INT_TY, INT_HASH_TY, DOUBLE_HASH_TY, BOOL_TY, STRING_TY,
                   UnboxedTupleTy((INT_HASH_TY, INT_HASH_TY)))

_varid = st.sampled_from(("x", "y", "f", "g", "acc", "n1"))
_conid_head = st.sampled_from(("I#", "Just", "D#"))


@st.composite
def _alternatives(draw, rhs_strategy):
    kind = draw(st.sampled_from(
        ("wildcard", "int", "inthash", "negative_int", "negative_inthash",
         "constructor", "tuple")))
    rhs = draw(rhs_strategy)
    if kind == "wildcard":
        return Alternative("_", (), rhs)
    if kind == "int":
        return Alternative(str(draw(st.integers(0, 99))), (), rhs)
    if kind == "inthash":
        return Alternative(f"{draw(st.integers(0, 99))}#", (), rhs)
    if kind == "negative_int":
        return Alternative(str(-draw(st.integers(1, 99))), (), rhs)
    if kind == "negative_inthash":
        return Alternative(f"{-draw(st.integers(1, 99))}#", (), rhs)
    if kind == "tuple":
        binders = draw(st.lists(_varid, min_size=0, max_size=3,
                                unique=True))
        return Alternative("(#,#)", binders, rhs)
    constructor = draw(_conid_head)
    binders = draw(st.lists(_varid, min_size=0, max_size=2, unique=True))
    return Alternative(constructor, binders, rhs)


@st.composite
def expressions(draw):
    """Arbitrary (syntactic) surface expressions, sections included."""
    leaf = st.one_of(
        _varid.map(EVar),
        st.sampled_from(_SECTION_NAMES).map(EVar),
        st.integers(-200, 200).map(ELitInt),
        st.integers(-200, 200).map(ELitIntHash),
        st.integers(-64, 64).map(lambda n: ELitDoubleHash(n / 8.0)),
        st.booleans().map(EBool),
        st.sampled_from(('hi', 'a"b', 'tab\t', 'nl\n', 'back\\slash'))
        .map(ELitString),
        st.sampled_from("abz").map(ELitChar),
        st.just(EUnboxedTuple(())),
    )

    def compound(children):
        concrete = st.sampled_from(_CONCRETE_TYPES)
        return st.one_of(
            st.tuples(children, children).map(lambda p: EApp(*p)),
            st.tuples(_varid, children, st.none() | concrete)
            .map(lambda t: ELam(t[0], t[1], t[2])),
            st.tuples(_varid, children, children, st.none() | concrete)
            .map(lambda t: ELet(t[0], t[1], t[2], t[3])),
            st.tuples(children, children, children)
            .map(lambda t: EIf(*t)),
            st.tuples(children, concrete).map(lambda t: EAnn(*t)),
            st.lists(children, min_size=1, max_size=3).map(EUnboxedTuple),
            st.tuples(children,
                      st.lists(_alternatives(children), min_size=1,
                               max_size=3))
            .map(lambda t: ECase(t[0], t[1])),
        )

    return draw(st.recursive(leaf, compound, max_leaves=10))


class TestExpressionRoundTrip:
    @given(expressions())
    @settings(max_examples=300, deadline=None)
    def test_parse_pretty_is_identity(self, expr):
        assert parse_expr(expr.pretty()) == expr

    @given(expressions())
    @settings(max_examples=150, deadline=None)
    def test_binding_rhs_round_trips_through_a_module(self, expr):
        source = f"f = {expr.pretty()}\n"
        parsed = parse_module(source)
        assert parsed.module.bindings()["f"].rhs == expr

    def test_negative_literal_patterns(self):
        expr = ECase(EVar("x"), [
            Alternative("-1#", (), ELitIntHash(1)),
            Alternative("-42", (), ELitIntHash(2)),
            Alternative("_", (), ELitIntHash(3)),
        ])
        assert parse_expr(expr.pretty()) == expr

    @pytest.mark.parametrize("name", _SECTION_NAMES)
    def test_sections_round_trip_in_every_position(self, name):
        section = EVar(name)
        positions = [
            section,                                   # bare rhs
            ELet("f", section, EApp(EVar("f"), ELitInt(1))),  # let rhs
            ECase(EVar("x"), [Alternative("_", (), section)]),  # case rhs
            EUnboxedTuple((section,)),                 # tuple component
            EApp(section, ELitInt(1)),                 # function position
            EApp(EVar("f"), section),                  # argument position
        ]
        for expr in positions:
            assert parse_expr(expr.pretty()) == expr, expr.pretty()

    def test_string_literals_are_double_quoted(self):
        rendered = ELitString("it's \"quoted\"\n").pretty()
        assert rendered.startswith('"')
        assert parse_expr(rendered) == ELitString("it's \"quoted\"\n")

    def test_case_parenthesised_in_application(self):
        expr = EApp(EVar("f"),
                    ECase(EVar("x"), [Alternative("_", (), EVar("y"))]))
        rendered = expr.pretty()
        assert "(case" in rendered
        assert parse_expr(rendered) == expr

    def test_annotated_let_keeps_its_grouping(self):
        expr = EAnn(ELet("v", ELitInt(1), EVar("v"), INT_TY), INT_TY)
        assert parse_expr(expr.pretty()) == expr


# ---------------------------------------------------------------------------
# Fuzzing
# ---------------------------------------------------------------------------


_FUZZ_ALPHABET = (string_module.ascii_letters + string_module.digits
                  + " \n()[]{}#,;:->=\\.\"'$+*/<>|&_")


class TestFuzz:
    @given(st.text(alphabet=_FUZZ_ALPHABET, max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_parser_total_over_garbage(self, source):
        try:
            parse_module(source)
        except ParseError:
            pass  # the only acceptable failure mode

    @given(st.text(max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_parser_total_over_unicode(self, source):
        try:
            parse_module(source)
        except ParseError:
            pass

    @given(schemes())
    @settings(max_examples=50, deadline=None)
    def test_rendered_schemes_are_valid_module_signatures(self, scheme):
        source = f"f :: {render_scheme(scheme, EXPLICIT)}\n"
        parsed = parse_module(source)
        assert "f" in parsed.module.signatures()
