"""Tests for the L calculus: typing (Figure 3) and semantics (Figure 4)."""

import pytest

from repro.core.errors import (
    KindError,
    LevityError,
    LevityPolymorphicArgument,
    LevityPolymorphicBinder,
    ScopeError,
    TypeCheckError,
)
from repro.lang_l import (
    App,
    Case,
    Con,
    Context,
    ERROR,
    ERROR_TYPE,
    INT,
    INT_HASH,
    I,
    KIND_INT,
    KIND_PTR,
    Lam,
    Lit,
    LKind,
    P,
    RepApp,
    RepLam,
    RepVarL,
    TArrow,
    TForallRep,
    TForallType,
    TVar,
    TyApp,
    TyLam,
    Var,
    arrow,
    boxed_int,
    check_kind,
    evaluate,
    kind_of,
    lam,
    step,
    type_of,
)
from repro.lang_l.examples import ILL_TYPED, LEVITY_VIOLATIONS, WELL_TYPED
from repro.lang_l.semantics import Bottom, Step
from repro.lang_l.syntax import rep_to_core
from repro.core import rep as core_rep


class TestKinding:
    def test_int_is_pointer_kinded(self):
        assert kind_of(Context(), INT) == KIND_PTR

    def test_int_hash_is_integer_kinded(self):
        assert kind_of(Context(), INT_HASH) == KIND_INT

    def test_arrow_is_pointer_kinded_even_over_unboxed(self):
        """Int# -> Int# :: TYPE P (rule T_ARROW; cf. Section 3.2's complaint)."""
        assert kind_of(Context(), arrow(INT_HASH, INT_HASH)) == KIND_PTR

    def test_forall_type_has_kind_of_body(self):
        ty = TForallType("a", KIND_PTR, TVar("a"))
        assert kind_of(Context(), ty) == KIND_PTR
        ty_unboxed = TForallType("a", KIND_PTR, INT_HASH)
        assert kind_of(Context(), ty_unboxed) == KIND_INT

    def test_forall_rep_body_kind_must_not_mention_binder(self):
        """Premise κ ≠ TYPE r of T_ALLREP."""
        bad = TForallRep("r", TForallType("a", LKind(RepVarL("r")),
                                          TVar("a")))
        with pytest.raises(KindError):
            kind_of(Context(), bad)

    def test_forall_rep_ok_when_body_is_arrow(self):
        ty = TForallRep("r", TForallType("a", LKind(RepVarL("r")),
                                         arrow(INT, TVar("a"))))
        assert kind_of(Context(), ty) == KIND_PTR

    def test_unbound_type_variable(self):
        with pytest.raises(ScopeError):
            kind_of(Context(), TVar("a"))

    def test_kind_validity_rejects_unbound_rep_var(self):
        with pytest.raises(ScopeError):
            check_kind(Context(), LKind(RepVarL("r")))
        check_kind(Context().bind_rep("r"), LKind(RepVarL("r")))

    def test_rep_to_core(self):
        assert rep_to_core(P) == core_rep.LIFTED
        assert rep_to_core(I) == core_rep.INT_REP
        assert rep_to_core(RepVarL("r")) == core_rep.RepVar("r")


class TestTyping:
    @pytest.mark.parametrize("example", WELL_TYPED, ids=lambda e: e.name)
    def test_well_typed_examples(self, example):
        inferred = type_of(Context(), example.expr)
        if example.expected_type is not None:
            assert inferred == example.expected_type

    @pytest.mark.parametrize("example", LEVITY_VIOLATIONS,
                             ids=lambda e: e.name)
    def test_levity_violations_raise_levity_errors(self, example):
        with pytest.raises(LevityError):
            type_of(Context(), example.expr)

    @pytest.mark.parametrize("example", ILL_TYPED, ids=lambda e: e.name)
    def test_ill_typed_examples_raise(self, example):
        with pytest.raises(TypeCheckError):
            type_of(Context(), example.expr)

    def test_error_has_its_figure3_type(self):
        assert type_of(Context(), ERROR) == ERROR_TYPE

    def test_levity_poly_binder_raises_binder_error(self):
        expr = RepLam("r", TyLam("a", LKind(RepVarL("r")),
                                 lam("x", TVar("a"), Var("x"))))
        with pytest.raises(LevityPolymorphicBinder):
            type_of(Context(), expr)

    def test_instantiation_principle_via_kinds(self):
        """Instantiating a ∀(a :: TYPE P) at Int# is a kind error (§3.1)."""
        poly_id = TyLam("a", KIND_PTR, lam("x", TVar("a"), Var("x")))
        with pytest.raises(KindError):
            type_of(Context(), TyApp(poly_id, INT_HASH))

    def test_instantiation_at_unboxed_kind_is_fine_when_quantified_so(self):
        poly_id = TyLam("a", KIND_INT, lam("x", TVar("a"), Var("x")))
        ty = type_of(Context(), TyApp(poly_id, INT_HASH))
        assert ty == arrow(INT_HASH, INT_HASH)

    def test_context_shadowing(self):
        ctx = Context().bind_term("x", INT).bind_term("x", INT_HASH)
        assert type_of(ctx, Var("x")) == INT_HASH

    def test_case_binder_has_int_hash_type(self):
        expr = lam("b", INT, Case(Var("b"), "x", Con(Var("x"))))
        assert type_of(Context(), expr) == arrow(INT, INT)

    def test_rep_application_requires_forall_rep(self):
        with pytest.raises(TypeCheckError):
            type_of(Context(), RepApp(Lit(3), P))

    def test_rep_application_scope_check(self):
        with pytest.raises(ScopeError):
            type_of(Context(), RepApp(ERROR, RepVarL("unbound")))


class TestSemantics:
    @pytest.mark.parametrize("example",
                             [e for e in WELL_TYPED
                              if e.expected_value is not None],
                             ids=lambda e: e.name)
    def test_evaluation_reaches_expected_value(self, example):
        outcome = evaluate(example.expr)
        assert not outcome.diverged
        assert outcome.value == example.expected_value

    @pytest.mark.parametrize("example",
                             [e for e in WELL_TYPED if e.diverges],
                             ids=lambda e: e.name)
    def test_error_programs_reach_bottom(self, example):
        outcome = evaluate(example.expr)
        assert outcome.diverged

    def test_values_do_not_step(self):
        assert step(Context(), Lit(3)) is None
        assert step(Context(), boxed_int(3)) is None
        assert step(Context(), lam("x", INT, Var("x"))) is None

    def test_error_steps_to_bottom(self):
        assert isinstance(step(Context(), ERROR), Bottom)

    def test_lazy_application_does_not_evaluate_argument(self):
        """S_BETAPTR substitutes the unevaluated argument."""
        diverging = App(TyApp(RepApp(ERROR, P), INT), boxed_int(0))
        expr = App(lam("x", INT, boxed_int(5)), diverging)
        result = step(Context(), expr)
        assert isinstance(result, Step)
        assert result.expr == boxed_int(5)

    def test_strict_application_evaluates_argument_first(self):
        """S_APPSTRICT evaluates an Int#-kinded argument before β-reduction."""
        argument = App(lam("y", INT_HASH, Var("y")), Lit(3))
        expr = App(lam("x", INT_HASH, Lit(0)), argument)
        result = step(Context(), expr)
        assert isinstance(result, Step)
        # The outer λ is untouched; the argument took a step.
        assert isinstance(result.expr, App)
        assert result.expr.argument == Lit(3)

    def test_evaluation_under_type_lambda(self):
        """S_TLAM: type abstractions evaluate their bodies (type erasure)."""
        expr = TyLam("a", KIND_PTR, App(lam("x", INT, Var("x")),
                                        boxed_int(1)))
        outcome = evaluate(expr)
        assert outcome.value == TyLam("a", KIND_PTR, boxed_int(1))

    def test_evaluation_is_deterministic(self):
        from repro.lang_l.examples import TWICE_INT, ID_INT
        from repro.lang_l.syntax import app
        expr = app(TWICE_INT, ID_INT, boxed_int(9))
        assert evaluate(expr).value == evaluate(expr).value == boxed_int(9)

    def test_capture_avoiding_substitution(self):
        # (λx:Int→Int. λy:Int. x y) (λz:Int. y')  -- the free 'y'' must not
        # be captured; we rename the bound y.  Use a context binding y'.
        ctx = Context().bind_term("free_y", INT)
        inner = lam("y", INT, App(Var("x"), Var("y")))
        expr = App(lam("x", arrow(INT, INT), inner),
                   lam("z", INT, Var("free_y")))
        result_type = type_of(ctx, expr)
        assert result_type == arrow(INT, INT)
        stepped = step(ctx, expr)
        assert isinstance(stepped, Step)
        assert type_of(ctx, stepped.expr) == arrow(INT, INT)

    def test_max_steps_guard(self):
        from repro.core.errors import EvaluationError
        # No recursion in L, so everything terminates; a tiny budget still
        # triggers the guard on a multi-step program.
        from repro.lang_l.examples import TWICE_INT, ID_INT
        from repro.lang_l.syntax import app
        with pytest.raises(EvaluationError):
            evaluate(app(TWICE_INT, ID_INT, boxed_int(1)), max_steps=1)
