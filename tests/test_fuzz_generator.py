"""Unit tests for the type-directed program generator (repro.fuzz)."""

import pytest

from repro.frontend import parse_module
from repro.fuzz import GenOptions, generate_corpus, generate_program
from repro.fuzz.generator import (
    MAYBE_INT_TY,
    PAIR_HASH_TY,
    render_value,
)
from repro.surface.types import (
    BOOL_TY,
    DOUBLE_HASH_TY,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    STRING_TY,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        first = generate_program(123, 7)
        second = generate_program(123, 7)
        assert first.source == second.source
        assert first.expected_value == second.expected_value
        assert first.intended == second.intended

    def test_programs_indexed_independently(self):
        # Program i depends only on (seed, i): generating a prefix of the
        # corpus or the whole corpus yields the same programs.
        corpus = generate_corpus(9, 5)
        assert corpus[3].source == generate_program(9, 3).source

    def test_different_seeds_differ(self):
        assert generate_program(1, 0).source != generate_program(2, 0).source


class TestCorpusShape:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(42, 150)

    def test_every_program_parses(self, corpus):
        for program in corpus:
            parsed = parse_module(program.source, program.filename)
            assert parsed.module == program.module

    def test_main_is_always_present_and_nullary(self, corpus):
        for program in corpus:
            main = program.module.bindings()["main"]
            assert main.params == ()
            assert "main" in program.intended

    def test_fragment_share(self, corpus):
        fragment = sum(1 for p in corpus if p.fragment)
        assert 0 < fragment < len(corpus)

    def test_flavor_coverage(self, corpus):
        seen = {flavor for program in corpus for flavor in program.flavors}
        # The paper's whole vocabulary should appear across 150 programs.
        assert {"loop", "levity", "pair", "higher", "unbox"} <= seen

    def test_levity_polymorphism_is_always_declared(self, corpus):
        # "Never infer levity polymorphism": rep-polymorphic bindings carry
        # explicit signatures, so no unsigned binding may mention Rep.
        for program in corpus:
            signatures = program.module.signatures()
            for name in program.unsigned:
                assert name not in signatures

    def test_expected_value_absent_only_for_function_mains(self, corpus):
        for program in corpus:
            if isinstance(program.main_type, FunTy):
                assert program.expected_value is None
            else:
                assert program.expected_value is not None

    def test_surface_vocabulary_coverage(self, corpus):
        text = "\n".join(program.source for program in corpus)
        for token in ("($)", "oneShot", "(.)", "runRW#", "(# ",
                      "forall (r :: Rep)", "case", "let", "if "):
            assert token in text, f"{token!r} never generated"


class TestOptions:
    def test_fragment_bias_one_forces_fragment(self):
        corpus = generate_corpus(5, 20, GenOptions(fragment_bias=1.0))
        assert all(program.fragment for program in corpus)

    def test_fragment_bias_zero_disables_fragment_mode(self):
        corpus = generate_corpus(5, 20, GenOptions(fragment_bias=0.0))
        assert not any(program.fragment for program in corpus)

    def test_depth_bounds_program_size(self):
        shallow = generate_corpus(1, 30, GenOptions(depth=1))
        deep = generate_corpus(1, 30, GenOptions(depth=6))
        assert sum(len(p.source) for p in shallow) < \
            sum(len(p.source) for p in deep)


class TestRenderValue:
    @pytest.mark.parametrize("type_,value,expected", [
        (INT_HASH_TY, -3, "-3#"),
        (INT_TY, 7, "(I# 7#)"),
        (DOUBLE_HASH_TY, 2.5, "2.5##"),
        (BOOL_TY, True, "True"),
        (BOOL_TY, False, "False"),
        (STRING_TY, "hi", "'hi'"),
        (MAYBE_INT_TY, None, "Nothing"),
        (MAYBE_INT_TY, 4, "(Just (I# 4#))"),
        (PAIR_HASH_TY, (1, -2), "(# 1#, -2# #)"),
        (FunTy(INT_TY, INT_TY), None, None),
    ])
    def test_rendering_matches_evaluator_show(self, type_, value, expected):
        assert render_value(type_, value) == expected
