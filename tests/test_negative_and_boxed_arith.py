"""Regression tests for the two bugs the batch path tripped over.

1. The parser rejected unary minus: ``n = -1#``, ``n = -5`` and
   ``d = -2.5##`` all died with ``parse error: expected an expression,
   found '-'``.  Prefix minus now parses at Haskell's precedence (6),
   folding into literals and elaborating to ``negate`` otherwise.

2. ``main = 1 + 2`` at type ``Int`` failed with ``variable '+' is not in
   scope``: the prelude had ``plusInt`` but not the operator spellings.
   Boxed ``+``/``-``/``*``/``negate`` now exist with evaluator support,
   and remaining scope errors suggest near-miss names.
"""

import pytest

from repro.driver import Session
from repro.frontend import parse_expr, parse_module
from repro.surface.ast import EApp, ELitDoubleHash, ELitInt, ELitIntHash, EVar


@pytest.fixture(scope="module")
def session():
    return Session()


class TestNegativeLiterals:
    def test_negative_unboxed_int_checks(self, session):
        assert session.check("n :: Int#\nn = -1#\n").ok

    def test_negative_boxed_int_checks(self, session):
        assert session.check("n :: Int\nn = -5\n").ok

    def test_negative_double_checks(self, session):
        assert session.check("d :: Double#\nd = -2.5##\n").ok

    def test_literals_fold_in_the_parser(self):
        assert parse_expr("-1#") == ELitIntHash(-1)
        assert parse_expr("-5") == ELitInt(-5)
        assert parse_expr("-2.5##") == ELitDoubleHash(-2.5)

    def test_prefix_minus_on_variable_elaborates_to_negate(self):
        assert parse_expr("- x") == EApp(EVar("negate"), EVar("x"))

    def test_infix_minus_still_binary(self):
        expr = parse_expr("x - 1")
        assert expr == EApp(EApp(EVar("-"), EVar("x")), ELitInt(1))

    def test_precedence_against_tighter_operators(self):
        # `- a * b` negates the product; `- a + b` adds to the negation.
        assert parse_expr("- a * b") == \
            EApp(EVar("negate"), EApp(EApp(EVar("*"), EVar("a")), EVar("b")))
        assert parse_expr("- a + b") == \
            EApp(EApp(EVar("+"), EApp(EVar("negate"), EVar("a"))), EVar("b"))

    def test_negation_rejected_as_operand_of_tighter_operator(self):
        # Haskell's "cannot mix" rule: accepting `a *# - b` would let the
        # negation's operand swallow the rest of the tighter chain
        # (`8.0## /## -2.0## /## 2.0##` would mis-group).
        from repro.core.errors import ParseError

        with pytest.raises(ParseError, match="parenthesise"):
            parse_expr("a *# - b")
        with pytest.raises(ParseError, match="parenthesise"):
            parse_expr("8.0## /## -2.0## /## 2.0##")
        # The parenthesised forms are fine.
        assert parse_expr("a *# (- b)") is not None
        assert parse_expr("8.0## /## (-2.0##) /## 2.0##") is not None

    def test_negative_literal_runs(self, session):
        result = session.run("main :: Int#\nmain = -5# +# 1#\n")
        assert result.ok and result.value == "-4#"

    def test_negative_boxed_literal_runs(self, session):
        result = session.run("main :: Int\nmain = -5\n")
        assert result.ok and "-5" in result.value

    def test_negative_case_pattern(self, session):
        result = session.run(
            "f :: Int# -> Int#\n"
            "f x = case x of { -1# -> 10#; _ -> 0# }\n"
            "main :: Int#\nmain = f (-1#)\n")
        assert result.ok and result.value == "10#"

    def test_negative_literal_argument_pretty_reparses(self):
        parsed = parse_module("main = f (-1)\n")
        printed = parsed.module.decls[0].pretty()
        assert parse_module(printed + "\n").module.decls[0] == \
            parsed.module.decls[0]

    def test_operator_application_pretty_reparses(self):
        # `x - 1` pretty-prints with the operator in section form —
        # bare `- x 1` would re-parse as the negation `negate (x 1)` —
        # and an operator in argument position keeps its section parens.
        for source in ("x - 1", "x +# 1#", "1 + 2 * 3", "f (+#)", "f (-)"):
            expr = parse_expr(source)
            assert parse_expr(expr.pretty()) == expr, source


class TestBoxedArithmetic:
    def test_boxed_plus_checks(self, session):
        result = session.check("main :: Int\nmain = 1 + 2\n")
        assert result.ok
        assert result.bindings[0].rendered == "Int"

    def test_boxed_plus_runs(self, session):
        result = session.run("main :: Int\nmain = 1 + 2\n")
        assert result.ok and "3" in result.value

    def test_boxed_minus_times_negate_run(self, session):
        result = session.run("main :: Int\nmain = negate 5 * 2 - 1\n")
        assert result.ok and "-11" in result.value

    def test_precedence_times_binds_tighter(self, session):
        result = session.run("main :: Int\nmain = 1 + 2 * 3\n")
        assert result.ok and "7" in result.value

    def test_inferred_without_signature(self, session):
        result = session.check("main = 1 + 2\n")
        assert result.ok
        assert result.bindings[0].rendered == "Int"


class TestScopeSuggestions:
    def test_boxed_unboxed_confusion_suggests_hash_variant(self, session):
        result = session.check("f :: Int# -> Int#\nf x = x + 1#\n")
        # `+` IS in scope now (at Int), so this is a type error, not scope;
        # use a name that stays out of scope instead.
        result = session.check("f = 1 ++## 2\n")
        assert not result.ok
        message = result.diagnostics[0].message
        assert "not in scope" in message and "did you mean" in message

    def test_typo_suggests_near_miss(self, session):
        result = session.check("f = plusIn 1 2\n")
        assert not result.ok
        assert "did you mean 'plusInt'?" in result.diagnostics[0].message

    def test_wild_name_gets_no_suggestion(self, session):
        result = session.check("h :: Int\nh = plusInt mystery 1\n")
        assert not result.ok
        assert result.diagnostics[0].message == \
            "variable 'mystery' is not in scope"
