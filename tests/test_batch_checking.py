"""Tests for sharded parallel batch checking and the incremental cache.

Covers the batch-path guarantees the driver makes:

* output order matches input order at ``jobs > 1``;
* a poisoned binding in one shard never affects another program;
* cache hits return byte-identical results, and editing one source
  invalidates exactly that entry;
* results (including full schemes, spans and diagnostics) survive a
  pickle round-trip — the property the worker IPC relies on.
"""

import os
import pickle

from repro.driver import DriverOptions, ResultCache, Session
from repro.driver.batch import (
    cache_key,
    options_fingerprint,
    payload_bytes,
    result_from_payload,
    result_to_payload,
)
from repro.__main__ import main


def make_corpus(count=12):
    corpus = []
    for i in range(count):
        corpus.append((f"prog_{i}.lev", f"""\
add{i} :: Int# -> Int# -> Int#
add{i} x y = x +# y
main :: Int
main = {i} + 1
"""))
    return corpus


class TestSharding:
    def test_output_order_matches_input_order(self):
        corpus = make_corpus(11)  # odd count: shards are uneven
        results = Session().check_many(corpus, jobs=2)
        assert [r.filename for r in results] == [fn for fn, _ in corpus]
        # Each program's own binding is in its own result.
        for i, result in enumerate(results):
            assert result.bindings[0].name == f"add{i}"

    def test_parallel_matches_serial(self):
        corpus = make_corpus(6)
        session = Session()
        serial = session.check_many(corpus)
        parallel = session.check_many(corpus, jobs=3)
        for one, other in zip(serial, parallel):
            assert one.ok == other.ok
            assert [b.rendered for b in one.bindings] == \
                [b.rendered for b in other.bindings]

    def test_poisoned_binding_does_not_leak_across_shards(self):
        corpus = make_corpus(8)
        corpus[2] = ("poison.lev",
                     "bad :: Int#\nbad = notInScope\nalso = 1 + 1\n")
        results = Session().check_many(corpus, jobs=2)
        assert not results[2].ok
        assert any("not in scope" in d.message for d in results[2].diagnostics)
        # The poisoned module still checked its other binding...
        assert any(b.name == "also" and b.ok for b in results[2].bindings)
        # ...and every other program is untouched.
        assert all(r.ok for i, r in enumerate(results) if i != 2)

    def test_jobs_one_with_more_workers_than_programs(self):
        corpus = make_corpus(2)
        results = Session().check_many(corpus, jobs=8)
        assert [r.ok for r in results] == [True, True]

    def test_duplicate_sources_check_once(self, tmp_path):
        source = "v :: Int\nv = 1 + 2\n"
        corpus = [("a.lev", source), ("b.lev", source), ("c.lev", source)]
        cache = ResultCache(str(tmp_path / "cache.json"))
        results = Session().check_many(corpus, jobs=2, cache=cache)
        # One check, one store; every caller still gets its own filename.
        assert cache.stores == 1
        assert [r.filename for r in results] == ["a.lev", "b.lev", "c.lev"]
        assert all(r.ok for r in results)
        for result in results:
            assert result.diagnostics == [] and \
                result.bindings[0].rendered == "Int"


class TestIncrementalCache:
    def test_cache_hits_are_byte_identical(self, tmp_path):
        corpus = make_corpus(5)
        path = str(tmp_path / "cache.json")
        session = Session()
        cold = session.check_many(corpus, cache=path)
        warm_cache = ResultCache(path)
        warm = session.check_many(corpus, cache=warm_cache)
        assert warm_cache.hits == len(corpus)
        assert warm_cache.misses == 0
        assert [payload_bytes(result_to_payload(r)) for r in cold] == \
            [payload_bytes(result_to_payload(r)) for r in warm]

    def test_editing_one_source_invalidates_exactly_one_entry(self, tmp_path):
        corpus = make_corpus(6)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        filename, source = corpus[4]
        corpus[4] = (filename, source.replace("+ 1", "+ 2"))
        cache = ResultCache(path)
        results = Session().check_many(corpus, cache=cache)
        assert cache.hits == 5 and cache.misses == 1
        assert all(r.ok for r in results)

    def test_renamed_file_reuses_cached_result_with_new_name(self, tmp_path):
        corpus = make_corpus(3)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        renamed = [(f"renamed_{i}.lev", source)
                   for i, (_, source) in enumerate(corpus)]
        cache = ResultCache(path)
        results = Session().check_many(renamed, cache=cache)
        assert cache.hits == 3
        assert [r.filename for r in results] == [fn for fn, _ in renamed]

    def test_failing_results_are_cached_too(self, tmp_path):
        corpus = [("bad.lev", "x = mystery\n")]
        path = str(tmp_path / "cache.json")
        cold = Session().check_many(corpus, cache=path)
        cache = ResultCache(path)
        warm = Session().check_many(corpus, cache=cache)
        assert cache.hits == 1
        assert not warm[0].ok
        assert [d.pretty() for d in warm[0].diagnostics] == \
            [d.pretty() for d in cold[0].diagnostics]

    def test_key_depends_on_options_and_source(self):
        default = DriverOptions()
        explicit = DriverOptions(explicit_runtime_reps=True)
        assert options_fingerprint(default) != options_fingerprint(explicit)
        assert cache_key("x = 1\n", default) != cache_key("x = 2\n", default)
        assert cache_key("x = 1\n", default) != cache_key("x = 1\n", explicit)

    def test_corrupt_cache_file_is_a_cold_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        results = Session().check_many(make_corpus(2), cache=path)
        assert all(r.ok for r in results)
        # The save rewrote it as a valid cache.
        reloaded = ResultCache(path)
        assert len(reloaded.entries) == 2

    def test_malformed_cache_entry_is_a_miss(self, tmp_path):
        import json

        corpus = make_corpus(2)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        with open(path) as handle:
            document = json.load(handle)
        key = sorted(document["entries"])[0]
        document["entries"][key] = {}  # truncated/hand-edited entry
        with open(path, "w") as handle:
            json.dump(document, handle)
        cache = ResultCache(path)
        results = Session().check_many(corpus, cache=cache)
        assert all(r.ok for r in results)
        # The counters are truthful: the bad entry counted as a miss.
        assert cache.hits == 1 and cache.misses == 1
        # The re-check repaired the entry.
        repaired = ResultCache(path)
        assert repaired.entries[key] != {}

    def test_run_only_options_do_not_invalidate_the_cache(self, tmp_path):
        # max_machine_steps never affects Pipeline.check, so changing it
        # must not cold-start the check cache.
        corpus = make_corpus(3)
        path = str(tmp_path / "cache.json")
        Session(DriverOptions(max_machine_steps=1_000_000)).check_many(
            corpus, cache=path)
        cache = ResultCache(path)
        Session(DriverOptions(max_machine_steps=5)).check_many(
            corpus, cache=cache)
        assert cache.hits == 3 and cache.misses == 0


class TestPayloads:
    def test_payload_round_trip_preserves_diagnostics_and_spans(self):
        result = Session().check("f :: Int#\nf = notHere\n", "p.lev")
        rebuilt = result_from_payload(result_to_payload(result))
        assert rebuilt.ok == result.ok
        assert [d.pretty() for d in rebuilt.diagnostics] == \
            [d.pretty() for d in result.diagnostics]
        assert [(b.name, b.rendered, b.ok, b.span) for b in rebuilt.bindings] \
            == [(b.name, b.rendered, b.ok, b.span) for b in result.bindings]

    def test_full_check_result_pickles_with_schemes(self):
        # The worker IPC guarantee: interned type/kind/rep nodes define
        # __reduce__, so even full results (schemes included) cross
        # process boundaries and re-intern on the other side.
        source = ("myError :: forall (r :: Rep) (a :: TYPE r). String -> a\n"
                  "myError s = error s\n"
                  "pair :: Int# -> (# Int#, Int# #)\n"
                  "pair n = (# n, n *# n #)\n")
        result = Session().check(source, "pickled.lev")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.ok
        assert [b.rendered for b in clone.bindings] == \
            [b.rendered for b in result.bindings]
        for mine, theirs in zip(result.bindings, clone.bindings):
            assert mine.scheme == theirs.scheme
            # Hash-consing survives the round trip: equal bodies are the
            # *same* interned object again.
            assert mine.scheme.body is theirs.scheme.body


class TestCli:
    def test_check_jobs_and_cache_flags(self, tmp_path, capsys):
        files = []
        for i in range(3):
            path = tmp_path / f"cli_{i}.lev"
            path.write_text(f"v{i} :: Int\nv{i} = {i} + {i}\n")
            files.append(str(path))
        cache = str(tmp_path / "cache.json")
        code = main(["check", "--jobs", "2", "--cache", cache, *files])
        assert code == 0
        assert os.path.exists(cache)
        out = capsys.readouterr().out
        assert "v0 :: Int" in out and "v2 :: Int" in out
        # Warm re-run through the CLI exits cleanly too.
        assert main(["check", "--jobs", "2", "--cache", cache, *files]) == 0
