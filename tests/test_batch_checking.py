"""Tests for sharded parallel batch checking and the incremental cache.

Covers the batch-path guarantees the driver makes:

* output order matches input order at ``jobs > 1``;
* a poisoned binding in one shard never affects another program;
* cache hits return byte-identical results, and editing one source
  invalidates exactly that entry;
* results (including full schemes, spans and diagnostics) survive a
  pickle round-trip — the property the worker IPC relies on.
"""

import os
import pickle

from repro.driver import DriverOptions, ResultCache, Session
from repro.driver.batch import (
    cache_key,
    options_fingerprint,
    payload_bytes,
    result_from_payload,
    result_to_payload,
)
from repro.__main__ import main


def make_corpus(count=12):
    corpus = []
    for i in range(count):
        corpus.append((f"prog_{i}.lev", f"""\
add{i} :: Int# -> Int# -> Int#
add{i} x y = x +# y
main :: Int
main = {i} + 1
"""))
    return corpus


#: Each corpus program has two independent bindings = two check units.
UNITS_PER_PROGRAM = 2


def _rewrite_entries(path, mutate):
    """Edit a sharded cache in place: load every entry, apply ``mutate``
    to the entries dict, write the changed ones back (the moral
    equivalent of hand-editing the old monolithic JSON document)."""
    from repro.driver.store import ShardStore

    store = ShardStore(path)
    entries = store.load_all()
    mutate(entries)
    for key, payload in entries.items():
        store.put(key, payload)
    store.save()


def _shard_files(root):
    """{relative path: file text} for every data file under a cache root
    (the empty ``.lock`` flock siblings are not data and are skipped)."""
    snapshot = {}
    for dirpath, _dirs, names in os.walk(root):
        for name in names:
            if name.endswith(".lock"):
                continue
            full = os.path.join(dirpath, name)
            with open(full, "r", encoding="utf-8") as handle:
                snapshot[os.path.relpath(full, root)] = handle.read()
    return snapshot


class TestSharding:
    def test_output_order_matches_input_order(self):
        corpus = make_corpus(11)  # odd count: shards are uneven
        results = Session().check_many(corpus, jobs=2)
        assert [r.filename for r in results] == [fn for fn, _ in corpus]
        # Each program's own binding is in its own result.
        for i, result in enumerate(results):
            assert result.bindings[0].name == f"add{i}"

    def test_parallel_matches_serial(self):
        corpus = make_corpus(6)
        session = Session()
        serial = session.check_many(corpus)
        parallel = session.check_many(corpus, jobs=3)
        for one, other in zip(serial, parallel):
            assert one.ok == other.ok
            assert [b.rendered for b in one.bindings] == \
                [b.rendered for b in other.bindings]

    def test_poisoned_binding_does_not_leak_across_shards(self):
        corpus = make_corpus(8)
        corpus[2] = ("poison.lev",
                     "bad :: Int#\nbad = notInScope\nalso = 1 + 1\n")
        results = Session().check_many(corpus, jobs=2)
        assert not results[2].ok
        assert any("not in scope" in d.message for d in results[2].diagnostics)
        # The poisoned module still checked its other binding...
        assert any(b.name == "also" and b.ok for b in results[2].bindings)
        # ...and every other program is untouched.
        assert all(r.ok for i, r in enumerate(results) if i != 2)

    def test_jobs_one_with_more_workers_than_programs(self):
        corpus = make_corpus(2)
        results = Session().check_many(corpus, jobs=8)
        assert [r.ok for r in results] == [True, True]

    def test_duplicate_sources_check_once(self, tmp_path):
        source = "v :: Int\nv = 1 + 2\n"
        corpus = [("a.lev", source), ("b.lev", source), ("c.lev", source)]
        cache = ResultCache(str(tmp_path / "cache.json"))
        results = Session().check_many(corpus, jobs=2, cache=cache)
        # One check, one store; every caller still gets its own filename.
        assert cache.stores == 1
        assert [r.filename for r in results] == ["a.lev", "b.lev", "c.lev"]
        assert all(r.ok for r in results)
        for result in results:
            assert result.diagnostics == [] and \
                result.bindings[0].rendered == "Int"


class TestIncrementalCache:
    def test_cache_hits_are_byte_identical(self, tmp_path):
        corpus = make_corpus(5)
        path = str(tmp_path / "cache.json")
        session = Session()
        cold = session.check_many(corpus, cache=path)
        warm_cache = ResultCache(path)
        warm = session.check_many(corpus, cache=warm_cache)
        # Unchanged files short-circuit on their whole-file entry; the
        # unit layer is never consulted.
        assert warm_cache.file_hits == len(corpus)
        assert warm_cache.hits == 0 and warm_cache.misses == 0
        assert [payload_bytes(result_to_payload(r)) for r in cold] == \
            [payload_bytes(result_to_payload(r)) for r in warm]

    def test_editing_one_binding_invalidates_exactly_one_unit(self, tmp_path):
        corpus = make_corpus(6)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        filename, source = corpus[4]
        # Edit the body of 'main' in one program: only that binding's unit
        # misses — the sibling 'add4' and every other program stay hits.
        corpus[4] = (filename, source.replace("+ 1", "+ 2"))
        cache = ResultCache(path)
        results = Session().check_many(corpus, cache=cache)
        # The edited file drops to the unit layer: its 'main' misses, its
        # untouched 'add4' unit hits; every other file short-circuits.
        assert cache.file_hits == len(corpus) - 1
        assert cache.misses == 1 and cache.hits == 1
        assert all(r.ok for r in results)

    def test_renamed_file_reuses_cached_result_with_new_name(self, tmp_path):
        corpus = make_corpus(3)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        renamed = [(f"renamed_{i}.lev", source)
                   for i, (_, source) in enumerate(corpus)]
        cache = ResultCache(path)
        results = Session().check_many(renamed, cache=cache)
        assert cache.file_hits == 3   # keys never include the filename
        assert [r.filename for r in results] == [fn for fn, _ in renamed]

    def test_failing_results_are_cached_too(self, tmp_path):
        corpus = [("bad.lev", "x = mystery\n")]
        path = str(tmp_path / "cache.json")
        cold = Session().check_many(corpus, cache=path)
        cache = ResultCache(path)
        warm = Session().check_many(corpus, cache=cache)
        assert cache.file_hits == 1
        assert not warm[0].ok
        assert [d.pretty() for d in warm[0].diagnostics] == \
            [d.pretty() for d in cold[0].diagnostics]

    def test_key_depends_on_options_and_source(self):
        default = DriverOptions()
        explicit = DriverOptions(explicit_runtime_reps=True)
        assert options_fingerprint(default) != options_fingerprint(explicit)
        assert cache_key("x = 1\n", default) != cache_key("x = 2\n", default)
        assert cache_key("x = 1\n", default) != cache_key("x = 1\n", explicit)

    def test_corrupt_cache_file_is_a_cold_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        results = Session().check_many(make_corpus(2), cache=path)
        assert all(r.ok for r in results)
        # The save rewrote it as a valid cache: one entry per unit plus a
        # whole-file short-circuit entry per program.
        reloaded = ResultCache(path)
        assert len(reloaded.entries) == 2 * UNITS_PER_PROGRAM + 2

    def test_malformed_cache_entry_is_a_miss(self, tmp_path):
        corpus = make_corpus(2)
        path = str(tmp_path / "cache.json")
        Session().check_many(corpus, cache=path)
        # Truncate every whole-file entry plus one unit entry: the files
        # drop to the unit layer, where the bad unit is a miss.
        corrupted = None

        def truncate(entries):
            nonlocal corrupted
            corrupted = sorted(k for k, v in entries.items()
                               if "members" in v)[0]
            for key, value in entries.items():
                if "members" not in value or key == corrupted:
                    entries[key] = {}

        _rewrite_entries(path, truncate)
        cache = ResultCache(path)
        results = Session().check_many(corpus, cache=cache)
        assert all(r.ok for r in results)
        # The counters are truthful: the bad unit entry counted as a miss.
        assert cache.file_hits == 0
        assert cache.hits == 2 * UNITS_PER_PROGRAM - 1
        assert cache.misses == 1
        # The re-check repaired the entries.
        repaired = ResultCache(path)
        assert repaired.entries[corrupted] != {}
        assert all(value != {} for value in repaired.entries.values())

    def test_run_only_options_do_not_invalidate_the_cache(self, tmp_path):
        # max_machine_steps never affects Pipeline.check, so changing it
        # must not cold-start the check cache.
        corpus = make_corpus(3)
        path = str(tmp_path / "cache.json")
        Session(DriverOptions(max_machine_steps=1_000_000)).check_many(
            corpus, cache=path)
        cache = ResultCache(path)
        Session(DriverOptions(max_machine_steps=5)).check_many(
            corpus, cache=cache)
        assert cache.file_hits == 3
        assert cache.misses == 0


class TestPayloads:
    def test_payload_round_trip_preserves_diagnostics_and_spans(self):
        result = Session().check("f :: Int#\nf = notHere\n", "p.lev")
        rebuilt = result_from_payload(result_to_payload(result))
        assert rebuilt.ok == result.ok
        assert [d.pretty() for d in rebuilt.diagnostics] == \
            [d.pretty() for d in result.diagnostics]
        assert [(b.name, b.rendered, b.ok, b.span) for b in rebuilt.bindings] \
            == [(b.name, b.rendered, b.ok, b.span) for b in result.bindings]

    def test_full_check_result_pickles_with_schemes(self):
        # The worker IPC guarantee: interned type/kind/rep nodes define
        # __reduce__, so even full results (schemes included) cross
        # process boundaries and re-intern on the other side.
        source = ("myError :: forall (r :: Rep) (a :: TYPE r). String -> a\n"
                  "myError s = error s\n"
                  "pair :: Int# -> (# Int#, Int# #)\n"
                  "pair n = (# n, n *# n #)\n")
        result = Session().check(source, "pickled.lev")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.ok
        assert [b.rendered for b in clone.bindings] == \
            [b.rendered for b in result.bindings]
        for mine, theirs in zip(result.bindings, clone.bindings):
            assert mine.scheme == theirs.scheme
            # Hash-consing survives the round trip: equal bodies are the
            # *same* interned object again.
            assert mine.scheme.body is theirs.scheme.body


class TestCli:
    def test_check_jobs_and_cache_flags(self, tmp_path, capsys):
        files = []
        for i in range(3):
            path = tmp_path / f"cli_{i}.lev"
            path.write_text(f"v{i} :: Int\nv{i} = {i} + {i}\n")
            files.append(str(path))
        cache = str(tmp_path / "cache.json")
        code = main(["check", "--jobs", "2", "--cache", cache, *files])
        assert code == 0
        assert os.path.exists(cache)
        out = capsys.readouterr().out
        assert "v0 :: Int" in out and "v2 :: Int" in out
        # Warm re-run through the CLI exits cleanly too.
        assert main(["check", "--jobs", "2", "--cache", cache, *files]) == 0


# ---------------------------------------------------------------------------
# Binding-level incrementality
# ---------------------------------------------------------------------------


DEP_MODULE = """\
base :: Int# -> Int#
base x = x +# 1#

mid = base 1#

top = mid +# 2#

lone :: Int#
lone = 7#
"""


class TestBindingLevelInvalidation:
    def test_editing_one_binding_rechecks_only_its_dependents(self, tmp_path):
        path = str(tmp_path / "cache.json")
        Session().check_many([("dep.lev", DEP_MODULE)], cache=path)
        # Change mid's *scheme* (Int# -> Int): top must re-check, but
        # 'base' and 'lone' stay hits.
        edited = DEP_MODULE.replace("mid = base 1#", "mid = 5")
        cache = ResultCache(path)
        results = Session().check_many([("dep.lev", edited)], cache=cache)
        assert cache.misses == 2          # mid + its dependent top
        assert cache.hits == 2            # base, lone untouched
        assert not results[0].ok          # top now misuses a boxed Int

    def test_early_cutoff_when_the_scheme_is_unchanged(self, tmp_path):
        path = str(tmp_path / "cache.json")
        Session().check_many([("dep.lev", DEP_MODULE)], cache=path)
        # Edit base's *body* without changing its scheme: only base itself
        # re-checks — its dependents' keys (source + dep schemes) are
        # unchanged, so they hit.
        edited = DEP_MODULE.replace("x +# 1#", "x +# 2#")
        cache = ResultCache(path)
        results = Session().check_many([("dep.lev", edited)], cache=cache)
        assert cache.misses == 1 and cache.hits == 3
        assert results[0].ok

    def test_moved_binding_is_still_a_hit_with_rebased_spans(self, tmp_path):
        path = str(tmp_path / "cache.json")
        bad_tail = "tail' :: Int\ntail' = stillMissing\n"
        source = "head' :: Int#\nhead' = 1#\n" + bad_tail
        Session().check_many([("move.lev", source)], cache=path)
        # Grow the first binding by two lines: the failing tail binding
        # moves down but its unit text is unchanged — a cache hit whose
        # diagnostic span must be re-based to the new absolute line.
        grown = ("head' :: Int#\nhead' =\n  1#\n    +# 1#\n" + bad_tail)
        cache = ResultCache(path)
        results = Session().check_many([("move.lev", grown)], cache=cache)
        assert cache.hits == 1 and cache.misses == 1  # head' changed
        [diagnostic] = results[0].errors
        assert diagnostic.binding == "tail'"
        expected_line = grown.split("\n").index("tail' = stillMissing") + 1
        assert diagnostic.span.line == expected_line
        # And the cached result is byte-identical to a cold from-scratch
        # check of the grown module (modulo nothing: including spans).
        cold = Session().check(grown, "move.lev")
        assert payload_bytes(result_to_payload(cold)) == \
            payload_bytes(result_to_payload(results[0]))

    def test_incremental_results_match_cold_full_pipeline(self, tmp_path):
        """Slim cached results must be byte-identical to Pipeline.check."""
        path = str(tmp_path / "cache.json")
        session = Session()
        session.check_many([("dep.lev", DEP_MODULE)], cache=path)
        warm = session.check_many([("dep.lev", DEP_MODULE)],
                                  cache=ResultCache(path))
        cold = session.check(DEP_MODULE, "dep.lev")
        assert payload_bytes(result_to_payload(cold)) == \
            payload_bytes(result_to_payload(warm[0]))

    def test_jobs_path_matches_serial_unit_path(self, tmp_path):
        corpus = [("dep.lev", DEP_MODULE)] + make_corpus(5)
        serial = Session().check_many(corpus, cache=str(tmp_path / "a.json"))
        parallel = Session().check_many(corpus, jobs=2,
                                        cache=str(tmp_path / "b.json"))
        assert [payload_bytes(result_to_payload(r)) for r in serial] == \
            [payload_bytes(result_to_payload(r)) for r in parallel]


class TestStats:
    def test_stats_report_units_and_cache_counters(self, tmp_path):
        from repro.driver import CheckStats

        path = str(tmp_path / "cache.json")
        stats = CheckStats()
        Session().check_many([("dep.lev", DEP_MODULE)], cache=path,
                             stats=stats)
        assert stats.files == 1
        assert stats.units == 4 and stats.checked == 4
        assert stats.cache_hits == 0 and stats.cache_misses == 4
        warm = CheckStats()
        Session().check_many([("dep.lev", DEP_MODULE)],
                             cache=ResultCache(path), stats=warm)
        # Fully warm: answered from the whole-file entry.
        assert warm.file_hits == 1 and warm.checked == 0
        assert "file hits: 1" in warm.pretty()
        # Edit one binding: the file drops to the unit layer.
        edited = DEP_MODULE.replace("lone = 7#", "lone = 8#")
        partial = CheckStats()
        Session().check_many([("dep.lev", edited)],
                             cache=ResultCache(path), stats=partial)
        assert partial.cache_hits == 3 and partial.cache_misses == 1
        text = partial.pretty()
        assert "cache hits: 3" in text and "units: 4" in text

    def test_stats_without_cache_time_every_unit(self):
        from repro.driver import CheckStats

        stats = CheckStats()
        results = Session().check_many([("dep.lev", DEP_MODULE)], stats=stats)
        assert results[0].ok
        assert stats.units == 4 and stats.checked == 4
        assert all(t.seconds is not None for t in stats.timings)

    def test_cli_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "stats.lev"
        path.write_text(DEP_MODULE)
        cache = str(tmp_path / "cache.json")
        assert main(["check", "--cache", cache, "--stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "-- stats --" in out
        assert "cache misses: 4" in out
        assert main(["check", "--cache", cache, "--stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "file hits: 1" in out and "cache misses: 0" in out


class TestAtomicCache:
    def test_concurrent_saves_merge_instead_of_clobbering(self, tmp_path):
        """Two runs sharing a --cache path must not lose each other's
        entries: save() re-reads the file and merges before the atomic
        replace."""
        path = str(tmp_path / "shared.json")
        one = ResultCache(path)
        two = ResultCache(path)   # loaded before 'one' saves
        Session().check_many(make_corpus(2), cache=one)
        Session().check_many([("other.lev", "w :: Int#\nw = 3#\n")],
                             cache=two)
        # 'two' saved last but must still contain 'one's entries
        # (per-unit and per-file entries both).
        merged = ResultCache(path)
        assert len(merged.entries) == (2 * UNITS_PER_PROGRAM + 2) + (1 + 1)

    def test_failed_save_leaves_the_old_shards_intact(self, tmp_path,
                                                      monkeypatch):
        import json as json_module

        import repro.driver.store as store_module

        path = str(tmp_path / "cache.json")
        Session().check_many(make_corpus(1), cache=path)
        before = _shard_files(path)
        cache = ResultCache(path)
        cache.store("deadbeef", {"members": []})

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(store_module.json, "dump", explode)
        try:
            cache.save()
        except RuntimeError:
            pass
        monkeypatch.setattr(store_module.json, "dump", json_module.dump)
        # Every shard file is untouched and still valid JSON...
        assert _shard_files(path) == before
        assert ResultCache(path).entries
        # ...and no temp files leak.
        leftovers = [name for name in _shard_files(path)
                     if ".repro-shard-" in name]
        assert leftovers == []

    def test_save_is_a_noop_when_nothing_changed(self, tmp_path):
        path = str(tmp_path / "cache.json")
        Session().check_many(make_corpus(1), cache=path)
        before = _shard_files(path)
        warm = ResultCache(path)
        Session().check_many(make_corpus(1), cache=warm)  # all hits
        # Per-shard dirty tracking: a no-op run neither rewrites any
        # shard file nor even loads the ones it never probed.
        assert warm.shards_written == 0
        assert warm.shards_read < len(before)
        assert _shard_files(path) == before


class TestReviewRegressions:
    def test_unit_entry_missing_fields_is_a_miss_not_a_crash(self, tmp_path):
        """A truncated unit entry (span/scheme_src stripped) must degrade
        to a cache miss, never a KeyError during assembly."""
        path = str(tmp_path / "cache.json")
        Session().check_many([("dep.lev", DEP_MODULE)], cache=path)

        def truncate(entries):
            for key, value in entries.items():
                if "members" in value:
                    value["members"] = [
                        {field: member[field] for field in member
                         if field not in ("scheme_src", "span")}
                        for member in value["members"]]
                else:
                    entries[key] = {}  # drop the file short-circuit

        _rewrite_entries(path, truncate)
        cache = ResultCache(path)
        results = Session().check_many([("dep.lev", DEP_MODULE)],
                                       cache=cache)
        assert results[0].ok
        assert cache.hits == 0 and cache.misses == 4

    def test_duplicate_identical_bindings_keep_their_own_spans(self):
        # Two textually identical failing bindings: each diagnostic must
        # point at its own occurrence, not both at the last one.
        source = "a = mystery\n\nb :: Int#\nb = 1#\n\na = mystery\n"
        check = Session().check(source, "dup.lev")
        lines = sorted(d.span.line for d in check.errors)
        assert lines == [1, 6]

    def test_json_with_stats_keeps_stdout_machine_readable(self, tmp_path,
                                                           capsys):
        import json

        path = tmp_path / "j.lev"
        path.write_text(DEP_MODULE)
        cache = str(tmp_path / "cache.json")
        assert main(["check", "--json", "--stats", "--cache", cache,
                     str(path)]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is one JSON document
        assert payload["results"][0]["ok"]
        assert payload["stats"]["check"]["checked"] > 0
        assert "batch.units_checked" in payload["stats"]["metrics"]["counters"]
        # Plain --json (no --stats) keeps the bare result-list shape.
        assert main(["check", "--json", str(path)]) == 0
        captured = capsys.readouterr()
        bare = json.loads(captured.out)
        assert isinstance(bare, list) and bare[0]["ok"]
