"""Tests for type classes (§7.3), the OpenKind baseline (§3.2-3.3) and the §8.1 survey."""

import pytest

from repro.classes import (
    ABS1_BINDING,
    ABS2_BINDING,
    ABS_SIGNATURE,
    ClassEnv,
    Dictionary,
    dictionary_binding,
    dictionary_data_decl,
    eta_expansion_binds_levity_polymorphic_value,
    make_eq_class,
    make_num_class,
    method_reference_arity,
    num_int_hash_instance,
    num_int_instance,
    selector_arity,
    standard_class_env,
)
from repro.core.errors import InstanceResolutionError, LevityError, TypeCheckError
from repro.core.kinds import TYPE_LIFTED
from repro.corpus import (
    CLASSES,
    LEVITY_GENERALISED_FUNCTIONS,
    analyse_class,
    corpus_by_name,
    survey_classes,
    survey_functions,
)
from repro.infer import Inferencer, infer_binding, infer_expr
from repro.subkind import (
    HASH,
    LEGACY_DOLLAR,
    LEGACY_ERROR,
    LEGACY_UNDEFINED,
    OPEN_KIND,
    STAR,
    LegacyKind,
    describe_error_message,
    hash_kind_loses_calling_convention,
    is_subkind_of,
    legacy_infer_wrapper_kind,
    legacy_instantiation_ok,
    legacy_kind_of,
    legacy_restrictions,
    unify_legacy_kinds,
)
from repro.surface.ast import ELitIntHash, EVar, apply
from repro.surface.types import (
    BYTEARRAY_HASH_TY,
    CHAR_HASH_TY,
    DOUBLE_HASH_TY,
    INT_HASH_TY,
    INT_TY,
    UnboxedTupleTy,
    fun,
)


class TestLevityPolymorphicClasses:
    def test_generalised_num_class_is_levity_polymorphic(self, class_setup):
        class_env, _ = class_setup
        assert class_env.class_info("Num").is_levity_polymorphic()

    def test_classic_num_class_is_not(self):
        class_env = ClassEnv()
        info = class_env.register_class(make_num_class(False))
        assert not info.is_levity_polymorphic()

    def test_selector_scheme_shape(self, class_setup):
        class_env, _ = class_setup
        info = class_env.class_info("Num")
        scheme = info.selector_scheme(info.method("+"))
        assert scheme.is_levity_polymorphic()
        assert scheme.constraints[0].class_name == "Num"

    def test_plus_at_int_hash(self, class_setup):
        class_env, env = class_setup
        expr = apply(EVar("+"), ELitIntHash(3), ELitIntHash(4))
        assert infer_expr(expr, env=env, class_env=class_env) == INT_HASH_TY

    def test_plus_at_boxed_int(self, class_setup):
        class_env, env = class_setup
        from repro.surface.ast import ELitInt
        expr = apply(EVar("+"), ELitInt(3), ELitInt(4))
        assert infer_expr(expr, env=env, class_env=class_env) == INT_TY

    def test_missing_instance_is_reported(self, class_setup):
        class_env, env = class_setup
        from repro.surface.ast import ELitDoubleHash, EBool
        expr = apply(EVar("+"), EBool(True), EBool(False))
        with pytest.raises((InstanceResolutionError, TypeCheckError)):
            infer_expr(expr, env=env, class_env=class_env)

    def test_abs1_accepted(self, class_setup):
        class_env, env = class_setup
        result = infer_binding(ABS1_BINDING.name, ABS1_BINDING.params,
                               ABS1_BINDING.rhs, signature=ABS_SIGNATURE,
                               env=env, class_env=class_env)
        assert result.ok and result.scheme.is_levity_polymorphic()

    def test_abs2_rejected(self, class_setup):
        """abs2 x = abs x binds a levity-polymorphic x (η-expansion of abs1)."""
        class_env, env = class_setup
        with pytest.raises(LevityError):
            infer_binding(ABS2_BINDING.name, ABS2_BINDING.params,
                          ABS2_BINDING.rhs, signature=ABS_SIGNATURE,
                          env=env, class_env=class_env)

    def test_arity_analysis_explains_abs1_vs_abs2(self, class_setup):
        class_env, _ = class_setup
        info = class_env.class_info("Num")
        assert selector_arity(info, "abs") == 1
        assert method_reference_arity(info, "abs", 1) == 2
        assert not eta_expansion_binds_levity_polymorphic_value(info, "abs", 0)
        assert eta_expansion_binds_levity_polymorphic_value(info, "abs", 1)

    def test_classic_class_rejects_unlifted_instance(self):
        class_env = ClassEnv()
        class_env.register_class(make_num_class(False))
        with pytest.raises(TypeCheckError):
            class_env.register_instance(num_int_hash_instance())

    def test_generalised_class_accepts_unlifted_instance(self):
        class_env = ClassEnv()
        class_env.register_class(make_num_class(True))
        instance = class_env.register_instance(num_int_hash_instance())
        assert instance.head_constructor() == "Int#"

    def test_duplicate_instance_rejected(self, class_setup):
        class_env, _ = class_setup
        with pytest.raises(TypeCheckError):
            class_env.register_instance(num_int_instance())

    def test_instance_with_missing_method_rejected(self):
        from repro.surface.ast import InstanceDecl
        class_env = ClassEnv()
        class_env.register_class(make_num_class(True))
        partial = InstanceDecl("Num", INT_HASH_TY, (("+", EVar("+#")),))
        with pytest.raises(TypeCheckError):
            class_env.register_instance(partial)

    def test_dictionary_data_decl_is_a_lifted_record(self, class_setup):
        class_env, _ = class_setup
        info = class_env.class_info("Num")
        decl = dictionary_data_decl(info)
        assert decl.name == "Num"
        assert decl.constructors[0].name == "MkNum"
        assert len(decl.constructors[0].fields) == len(info.methods)

    def test_dictionary_binding_is_monomorphic(self, class_setup):
        class_env, _ = class_setup
        info = class_env.class_info("Num")
        instance = class_env.lookup_instance("Num", INT_HASH_TY)
        name, expr = dictionary_binding(info, instance)
        assert name == "$dNumInt#"
        assert "MkNum" in expr.pretty()

    def test_dictionary_field_types_at_int_hash(self, class_setup):
        class_env, _ = class_setup
        info = class_env.class_info("Num")
        fields = info.dictionary_field_types(INT_HASH_TY)
        assert fields["+"] == fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)

    def test_runtime_dictionary_selection(self):
        dictionary = Dictionary("Num", "Int#", {"+": "plus-impl"})
        assert dictionary.select("+") == "plus-impl"
        with pytest.raises(KeyError):
            dictionary.select("nonexistent")


class TestSubkindBaseline:
    def test_lattice(self):
        assert is_subkind_of(STAR, OPEN_KIND)
        assert is_subkind_of(HASH, OPEN_KIND)
        assert not is_subkind_of(OPEN_KIND, STAR)
        assert not is_subkind_of(STAR, HASH)

    def test_legacy_kind_projection_loses_information(self):
        assert legacy_kind_of(INT_HASH_TY) == HASH
        assert legacy_kind_of(DOUBLE_HASH_TY) == HASH
        assert legacy_kind_of(BYTEARRAY_HASH_TY) == HASH
        assert legacy_kind_of(UnboxedTupleTy((INT_TY, INT_TY))) == HASH
        assert legacy_kind_of(INT_TY) == STAR

    def test_hash_kind_loses_calling_convention(self):
        report = hash_kind_loses_calling_convention(
            (INT_HASH_TY, CHAR_HASH_TY, DOUBLE_HASH_TY,
             UnboxedTupleTy((INT_TY, INT_TY))))
        assert report["legacy_kinds_all_equal"]
        assert report["calling_conventions_distinct"]

    def test_magical_error_accepts_unlifted(self):
        assert legacy_instantiation_ok(LEGACY_ERROR, INT_HASH_TY)
        assert legacy_instantiation_ok(LEGACY_UNDEFINED, INT_HASH_TY)
        assert legacy_instantiation_ok(LEGACY_DOLLAR, INT_HASH_TY)

    def test_user_wrapper_loses_the_magic(self):
        """myError under the legacy system cannot be used at Int# (§3.3)."""
        wrapper = legacy_infer_wrapper_kind(LEGACY_ERROR)
        assert not wrapper.magical
        assert legacy_instantiation_ok(wrapper, INT_TY)
        assert not legacy_instantiation_ok(wrapper, INT_HASH_TY)

    def test_levity_polymorphism_fixes_the_wrapper(self):
        """The same wrapper is fully general under levity polymorphism (§5.2)."""
        from repro.core.kinds import REP_KIND
        from repro.surface.ast import EApp, ELitString
        from repro.surface.prelude import prelude_env
        from repro.surface.types import Binder, ForAllTy, STRING_TY, TyVar, \
            rep_var_kind
        sig = ForAllTy((Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
                       fun(STRING_TY, TyVar("a", rep_var_kind("r"))))
        rhs = EApp(EVar("error"), ELitString("Program error"))
        result = infer_binding("myError", ["s"], rhs, signature=sig,
                               env=prelude_env())
        assert result.scheme.is_levity_polymorphic()

    def test_openkind_leaks_into_error_messages(self):
        message = describe_error_message(
            legacy_infer_wrapper_kind(LEGACY_ERROR), INT_HASH_TY)
        assert "Type" in message and "#" in message

    def test_subsumption_is_not_symmetric(self):
        from repro.core.errors import KindError
        assert unify_legacy_kinds(OPEN_KIND, HASH) == HASH
        with pytest.raises(KindError):
            unify_legacy_kinds(HASH, OPEN_KIND)

    def test_legacy_restrictions_enumerated(self):
        restrictions = legacy_restrictions()
        assert set(restrictions) == {"type_families", "indices", "saturation"}


class TestCorpusSurvey:
    def test_corpus_has_76_classes(self):
        assert len(CLASSES) == 76

    def test_survey_finds_a_substantial_generalisable_fraction(self):
        survey = survey_classes()
        assert survey.total == 76
        # The paper reports 34/76; our conservative analysis finds at least
        # a quarter and at most half of the corpus generalisable.
        assert 19 <= survey.generalisable_count <= 38

    @pytest.mark.parametrize("name", ["Eq", "Ord", "Num", "Bounded", "Bits"])
    def test_known_generalisable_classes(self, name):
        verdict = analyse_class(corpus_by_name()[name])
        assert verdict.generalisable

    @pytest.mark.parametrize("name", ["Functor", "Monad", "Foldable",
                                      "Traversable", "Read", "Ix", "Data"])
    def test_known_non_generalisable_classes(self, name):
        verdict = analyse_class(corpus_by_name()[name])
        assert not verdict.generalisable

    def test_higher_kinded_classes_blocked_by_kind(self):
        verdict = analyse_class(corpus_by_name()["Functor"])
        assert "kind" in verdict.reason

    def test_superclass_blocking_propagates(self):
        # Integral is blocked (quotRem); anything requiring it is too.
        assert not analyse_class(corpus_by_name()["Integral"]).generalisable

    def test_six_generalised_functions(self):
        survey = survey_functions()
        assert survey.count == 6
        assert survey.all_verified
        names = {entry.name for entry in LEVITY_GENERALISED_FUNCTIONS}
        assert {"error", "($)", "runRW#", "oneShot"} <= names
